//! Criterion micro-benchmarks for the d-e-que substrate: the THE protocol's
//! owner fast path, the special-task operations, and the growable
//! `PoolDeque` and fence-free multiplicity deque for comparison. These
//! quantify the "management of d-e-ques" cost component of the paper's
//! overhead breakdowns.

use adaptivetc_deque::{
    ChaseLevDeque, ClSteal, FenceFreeDeque, PoolDeque, StealOutcome, TheDeque, WsDeque,
};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

/// The owner fast path (push + matched pop) through the [`WsDeque`] trait,
/// exactly as the generic engine drives it — one bench per backend, so the
/// substrate cost of `Config::backend` choices is directly comparable.
fn bench_backend_push_pop<D: WsDeque<u64>>(c: &mut Criterion) {
    let dq = D::with_capacity(1024);
    c.bench_function(&format!("backend/{}/push_pop", D::NAME), |b| {
        b.iter(|| {
            WsDeque::push(&dq, black_box(1)).unwrap();
            black_box(dq.pop())
        })
    });
}

/// The special-task cycle (push_special + push + pop + pop_special) through
/// the trait: the extra cost `Mode::Adaptive` pays per special section.
fn bench_backend_special_cycle<D: WsDeque<u64>>(c: &mut Criterion) {
    let dq = D::with_capacity(1024);
    c.bench_function(&format!("backend/{}/special_cycle", D::NAME), |b| {
        b.iter(|| {
            dq.push_special(black_box(9)).unwrap();
            WsDeque::push(&dq, black_box(1)).unwrap();
            black_box(dq.pop());
            black_box(dq.pop_special())
        })
    });
}

/// The thief path (push + steal) through the trait.
fn bench_backend_steal<D: WsDeque<u64>>(c: &mut Criterion) {
    let dq = D::with_capacity(1024);
    c.bench_function(&format!("backend/{}/push_steal", D::NAME), |b| {
        b.iter(|| {
            WsDeque::push(&dq, black_box(1)).unwrap();
            match dq.steal() {
                StealOutcome::Stolen(v) => black_box(v),
                StealOutcome::Empty => unreachable!("just pushed"),
            }
        })
    });
}

/// Ops per iteration for the fence-free benches. Its publication log is
/// monotone — segments are freed only on `Drop` — so the open-ended
/// single-deque loops above would grow its memory without bound. Each
/// iteration instead runs a bounded burst on a fresh deque; the
/// construction cost is amortized over the burst and the reported figure
/// is per *burst*, not per op.
const FF_BURST: u64 = 256;

fn bench_fence_free(c: &mut Criterion) {
    c.bench_function(&format!("backend/fence-free/push_pop_x{FF_BURST}"), |b| {
        b.iter(|| {
            let dq: FenceFreeDeque<u64> = FenceFreeDeque::with_capacity(FF_BURST as usize);
            for i in 0..FF_BURST {
                WsDeque::push(&dq, black_box(i)).unwrap();
                black_box(WsDeque::pop(&dq));
            }
        })
    });
    c.bench_function(
        &format!("backend/fence-free/special_cycle_x{FF_BURST}"),
        |b| {
            b.iter(|| {
                let dq: FenceFreeDeque<u64> = FenceFreeDeque::with_capacity(FF_BURST as usize);
                for i in 0..FF_BURST {
                    WsDeque::push_special(&dq, black_box(9)).unwrap();
                    WsDeque::push(&dq, black_box(i)).unwrap();
                    black_box(WsDeque::pop(&dq));
                    black_box(WsDeque::pop_special(&dq));
                }
            })
        },
    );
    c.bench_function(&format!("backend/fence-free/push_steal_x{FF_BURST}"), |b| {
        b.iter(|| {
            let dq: FenceFreeDeque<u64> = FenceFreeDeque::with_capacity(FF_BURST as usize);
            for i in 0..FF_BURST {
                WsDeque::push(&dq, black_box(i)).unwrap();
                match WsDeque::steal(&dq) {
                    StealOutcome::Stolen(v) => {
                        black_box(v);
                    }
                    StealOutcome::Empty => unreachable!("just pushed"),
                }
            }
        })
    });
}

fn bench_all_backends(c: &mut Criterion) {
    bench_backend_push_pop::<TheDeque<u64>>(c);
    bench_backend_push_pop::<ChaseLevDeque<u64>>(c);
    bench_backend_push_pop::<PoolDeque<u64>>(c);
    bench_backend_special_cycle::<TheDeque<u64>>(c);
    bench_backend_special_cycle::<ChaseLevDeque<u64>>(c);
    bench_backend_special_cycle::<PoolDeque<u64>>(c);
    bench_backend_steal::<TheDeque<u64>>(c);
    bench_backend_steal::<ChaseLevDeque<u64>>(c);
    bench_backend_steal::<PoolDeque<u64>>(c);
    bench_fence_free(c);
}

fn bench_the_push_pop(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1)).unwrap();
            black_box(dq.pop())
        })
    });
}

fn bench_the_special_cycle(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/special_cycle", |b| {
        b.iter(|| {
            dq.push_special(black_box(9)).unwrap();
            dq.push(black_box(1)).unwrap();
            black_box(dq.pop());
            black_box(dq.pop_special())
        })
    });
}

fn bench_the_steal(c: &mut Criterion) {
    let dq: TheDeque<u64> = TheDeque::new(1024);
    c.bench_function("the_deque/push_steal", |b| {
        b.iter(|| {
            dq.push(black_box(1)).unwrap();
            match dq.steal() {
                StealOutcome::Stolen(v) => black_box(v),
                StealOutcome::Empty => unreachable!("just pushed"),
            }
        })
    });
}

fn bench_pool_push_pop(c: &mut Criterion) {
    let dq: PoolDeque<u64> = PoolDeque::new();
    c.bench_function("pool_deque/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            black_box(dq.pop())
        })
    });
}

fn bench_chase_lev_push_pop(c: &mut Criterion) {
    let dq: ChaseLevDeque<u64> = ChaseLevDeque::new();
    c.bench_function("chase_lev/push_pop", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            black_box(dq.pop())
        })
    });
}

fn bench_chase_lev_steal(c: &mut Criterion) {
    let dq: ChaseLevDeque<u64> = ChaseLevDeque::new();
    c.bench_function("chase_lev/push_steal", |b| {
        b.iter(|| {
            dq.push(black_box(1));
            match dq.steal() {
                ClSteal::Stolen(v) => black_box(v),
                _ => unreachable!("single-threaded: just pushed"),
            }
        })
    });
}

criterion_group!(
    benches,
    bench_the_push_pop,
    bench_the_special_cycle,
    bench_the_steal,
    bench_pool_push_pop,
    bench_chase_lev_push_pop,
    bench_chase_lev_steal,
    bench_all_backends
);
criterion_main!(benches);
