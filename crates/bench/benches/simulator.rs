//! Criterion benchmarks of the simulator's event loop throughput — how
//! much real time one simulated policy sweep costs (this bounds how large
//! the figure harness instances can be).

use adaptivetc_core::Config;
use adaptivetc_sim::{simulate, CostModel, Policy, SimTree};
use adaptivetc_workloads::nqueens::NqueensArray;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_simulate_policies(c: &mut Criterion) {
    let tree = SimTree::from_problem(&NqueensArray::new(9));
    let cost = CostModel::calibrated();
    let cfg = Config::new(8);
    let mut group = c.benchmark_group("simulate_nqueens9_8workers");
    group.sample_size(10);
    for policy in [
        Policy::Cilk,
        Policy::Tascell,
        Policy::AdaptiveTc,
        Policy::CutoffLibrary,
    ] {
        group.bench_function(policy.name(), |b| {
            b.iter(|| black_box(simulate(&tree, policy, &cfg, cost).wall_ns))
        });
    }
    group.finish();
}

fn bench_flatten(c: &mut Criterion) {
    let problem = NqueensArray::new(9);
    let mut group = c.benchmark_group("flatten");
    group.sample_size(10);
    group.bench_function("nqueens9", |b| {
        b.iter(|| black_box(SimTree::from_problem(&problem).len()))
    });
    group.finish();
}

criterion_group!(benches, bench_simulate_policies, bench_flatten);
criterion_main!(benches);
