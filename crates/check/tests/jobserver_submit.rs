//! Bounded model checking of the job-server submission kernel
//! (`runtime/src/submit.rs`, `#[path]`-included by `adaptivetc_check`).
//!
//! The suite covers the three protocol obligations of the kernel,
//! exhaustively at 2 workers × 2 jobs under a preemption bound:
//!
//! * **no lost submission** — concurrent producers into the Vyukov ring
//!   never drop or duplicate a payload;
//! * **no double claim** — concurrent consumers deliver every queued job
//!   to exactly one worker, and `JobLifecycle::claim` admits exactly one
//!   claimer;
//! * **cancel vs. complete** — a client cancel racing a worker resolves
//!   to exactly one terminal state, never runs a cancelled-before-claim
//!   job, and the race window (cancel landing between `claim` and the
//!   token read at finish) is pinned with a replayable schedule.

use adaptivetc_check::submit::{
    CancelOutcome, CancelToken, JobLifecycle, JobStatus, PrioQueue, Priority, SubmitQueue,
};
use adaptivetc_check::sync::{AtomicBool, Ordering};
use adaptivetc_check::{current_trail, explore, replay, Config};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// One job as the model sees it: the lifecycle word, the cancel token,
/// and a flag recording whether the "job body" ever executed.
struct ModelJob {
    life: JobLifecycle,
    token: CancelToken,
    ran: AtomicBool,
}

impl ModelJob {
    fn new() -> Self {
        ModelJob {
            life: JobLifecycle::new(),
            token: CancelToken::new(),
            ran: AtomicBool::new(false),
        }
    }
}

/// A worker: drain the queue, claim each delivered job, run it (observing
/// the cancel token exactly like the engine's poll points + lead finish),
/// and enter the terminal state. Returns the indices it popped.
fn drain(q: &SubmitQueue<usize>, jobs: &[ModelJob; 2]) -> Vec<usize> {
    let mut popped = Vec::new();
    while let Some(i) = q.try_pop() {
        popped.push(i);
        let j = &jobs[i];
        if j.life.claim() {
            j.ran.store(true, Ordering::Relaxed);
            let cancelled = j.token.get();
            assert!(j.life.finish(cancelled), "lead finish must succeed");
        } else {
            // A claim can only lose to a client cancel, and the loser job
            // must never have run.
            assert_eq!(j.life.status(), JobStatus::Cancelled);
            assert!(!j.ran.load(Ordering::Relaxed), "cancelled job ran");
        }
    }
    popped
}

/// No lost submission: two concurrent producers into a two-slot ring both
/// land, and a drain recovers exactly their payloads.
#[test]
fn concurrent_submitters_never_lose_a_submission() {
    let report = explore(Config::with_preemption_bound(2), || {
        let q = Arc::new(SubmitQueue::<u32>::with_capacity(2));
        let t = {
            let q = Arc::clone(&q);
            shim_sync::thread::spawn(move || q.try_push(1).is_ok())
        };
        let main_ok = q.try_push(2).is_ok();
        let thief_ok = t.join().unwrap();
        assert!(
            main_ok && thief_ok,
            "a two-slot ring must accept two concurrent submissions"
        );
        let mut drained = Vec::new();
        while let Some(v) = q.try_pop() {
            drained.push(v);
        }
        drained.sort_unstable();
        assert_eq!(drained, vec![1, 2], "submission lost or duplicated");
    });
    assert!(
        report.complete,
        "submission space not exhausted: {report:?}"
    );
}

/// Admission control: three pushes into a two-slot ring admit exactly two
/// payloads; the rejected push gets its payload handed back and the drain
/// sees no duplicate.
#[test]
fn full_ring_rejects_exactly_the_overflow() {
    let report = explore(Config::with_preemption_bound(2), || {
        let q = Arc::new(SubmitQueue::<u32>::with_capacity(2));
        let t = {
            let q = Arc::clone(&q);
            shim_sync::thread::spawn(move || {
                let mut rejected = Vec::new();
                for v in [1, 2] {
                    if let Err(back) = q.try_push(v) {
                        rejected.push(back);
                    }
                }
                rejected
            })
        };
        let mut rejected = match q.try_push(3) {
            Ok(()) => Vec::new(),
            Err(back) => vec![back],
        };
        rejected.extend(t.join().unwrap());
        let mut drained = Vec::new();
        while let Some(v) = q.try_pop() {
            drained.push(v);
        }
        assert_eq!(drained.len(), 2, "exactly two of three pushes admitted");
        assert_eq!(rejected.len(), 1, "exactly one push rejected");
        let mut all = drained;
        all.extend(rejected);
        all.sort_unstable();
        assert_eq!(all, vec![1, 2, 3], "payload lost or duplicated");
    });
    assert!(report.complete, "admission space not exhausted: {report:?}");
}

/// No double claim: two workers racing over two queued jobs deliver each
/// job to exactly one of them, and both jobs complete.
#[test]
fn two_workers_claim_two_jobs_disjointly() {
    let report = explore(Config::with_preemption_bound(2), || {
        let q = Arc::new(SubmitQueue::<usize>::with_capacity(2));
        let jobs = Arc::new([ModelJob::new(), ModelJob::new()]);
        q.try_push(0).unwrap();
        q.try_push(1).unwrap();
        let w = {
            let q = Arc::clone(&q);
            let jobs = Arc::clone(&jobs);
            shim_sync::thread::spawn(move || drain(&q, &jobs))
        };
        let mut popped = drain(&q, &jobs);
        popped.extend(w.join().unwrap());
        popped.sort_unstable();
        assert_eq!(popped, vec![0, 1], "each job delivered exactly once");
        for j in jobs.iter() {
            assert_eq!(j.life.status(), JobStatus::Completed);
            assert!(j.ran.load(Ordering::Relaxed));
        }
    });
    assert!(report.complete, "claim space not exhausted: {report:?}");
}

/// Outcome of one cancel-race interleaving, as pinned by the exhaustive
/// test: (cancel outcome, job 0 terminal state, whether job 0 ran).
type Outcome = (&'static str, &'static str, bool);

/// Outcomes paired with the decision trail that produced them.
type TraceSet = BTreeSet<(Outcome, Vec<usize>)>;

fn outcome_name(o: CancelOutcome) -> &'static str {
    match o {
        CancelOutcome::CancelledBeforeRun => "before_run",
        CancelOutcome::Requested => "requested",
        CancelOutcome::AlreadyTerminal => "already_terminal",
    }
}

fn status_name(s: JobStatus) -> &'static str {
    match s {
        JobStatus::Queued => "queued",
        JobStatus::Running => "running",
        JobStatus::Completed => "completed",
        JobStatus::Cancelled => "cancelled",
    }
}

/// The full 2 workers × 2 jobs cancel race: two queued jobs, two workers
/// draining, and the client cancelling job 0 concurrently. Every
/// interleaving must deliver each job exactly once, complete job 1, and
/// leave job 0 in exactly one terminal state consistent with the cancel
/// outcome the client observed.
fn cancel_scenario(sink: Option<&Mutex<TraceSet>>) {
    let q = Arc::new(SubmitQueue::<usize>::with_capacity(2));
    let jobs = Arc::new([ModelJob::new(), ModelJob::new()]);
    q.try_push(0).unwrap();
    q.try_push(1).unwrap();
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let q = Arc::clone(&q);
            let jobs = Arc::clone(&jobs);
            shim_sync::thread::spawn(move || drain(&q, &jobs))
        })
        .collect();
    // The client: cancel job 0 while the workers drain.
    let outcome = jobs[0].life.cancel(&jobs[0].token);
    let mut popped = Vec::new();
    for w in workers {
        popped.extend(w.join().unwrap());
    }
    popped.sort_unstable();
    assert_eq!(popped, vec![0, 1], "each job delivered exactly once");

    // Job 1 is never cancelled: it must complete.
    assert_eq!(jobs[1].life.status(), JobStatus::Completed);
    assert!(jobs[1].ran.load(Ordering::Relaxed));

    // Job 0: exactly one terminal state, consistent with what the client
    // was told.
    let status = jobs[0].life.status();
    let ran = jobs[0].ran.load(Ordering::Relaxed);
    assert!(status.is_terminal(), "job 0 left non-terminal: {status:?}");
    match outcome {
        CancelOutcome::CancelledBeforeRun => {
            assert_eq!(status, JobStatus::Cancelled);
            assert!(!ran, "cancelled-before-claim job must never run");
        }
        CancelOutcome::Requested => {
            // The worker had claimed; the terminal state depends on
            // whether its finish-time token read saw the raise.
            assert!(ran, "Requested implies the job was claimed and ran");
        }
        CancelOutcome::AlreadyTerminal => {
            // The only terminal writer before the cancel was the worker's
            // finish, and the token cannot have been raised yet.
            assert_eq!(status, JobStatus::Completed);
            assert!(ran);
        }
    }
    // Double-check the cancel was idempotent from here on.
    assert_eq!(
        jobs[0].life.cancel(&jobs[0].token),
        CancelOutcome::AlreadyTerminal
    );
    if let Some(sink) = sink {
        let trail = current_trail().expect("inside exploration");
        sink.lock()
            .unwrap()
            .insert(((outcome_name(outcome), status_name(status), ran), trail));
    }
}

/// Exhaustively explore the cancel race at 2 workers × 2 jobs and pin the
/// exact set of reachable resolutions.
#[test]
fn cancel_vs_complete_has_exactly_one_terminal_state() {
    let seen: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    let report = explore(Config::with_preemption_bound(2), move || {
        cancel_scenario(Some(&sink));
    });
    assert!(report.complete, "cancel space not exhausted: {report:?}");
    let outcomes: BTreeSet<Outcome> = seen.lock().unwrap().iter().map(|(o, _)| *o).collect();
    let expected: BTreeSet<Outcome> = [
        // Cancel lands before any worker claims: the job never runs.
        ("before_run", "cancelled", false),
        // Cancel lands while the job runs and the finish-time token read
        // sees the raise: terminal Cancelled.
        ("requested", "cancelled", true),
        // The race window: cancel observes Running (so the client is told
        // Requested) but the worker's token read happened first — the job
        // completes. Exactly one terminal state either way.
        ("requested", "completed", true),
        // Cancel arrives after the terminal transition: a no-op.
        ("already_terminal", "completed", true),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        outcomes, expected,
        "reachable cancel-race resolutions changed"
    );
    println!("jobserver_submit::cancel_vs_complete: {report:?}, outcomes {outcomes:?}");
}

/// Regression pin: replay a schedule that drives the cancel into the
/// window between the worker's claim and its finish-time token read (the
/// client is told `Requested`, the terminal state is `Cancelled`) and
/// require the same resolution again. The schedule is re-captured by
/// exploration first, so the pin tracks the protocol, not incidental
/// yield-point numbering.
#[test]
fn cancel_race_window_schedule_replays() {
    let seen: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    let report = explore(Config::with_preemption_bound(2), move || {
        cancel_scenario(Some(&sink));
    });
    assert!(report.complete, "exploration incomplete: {report:?}");
    let window: Vec<usize> = seen
        .lock()
        .unwrap()
        .iter()
        .find(|((outcome, status, _), _)| *outcome == "requested" && *status == "cancelled")
        .map(|(_, trail)| trail.clone())
        .expect("the mid-run cancel window must be reachable at bound 2");
    // Deterministic replay of the pinned interleaving, asserting the same
    // resolution (cancel_scenario panics on any inconsistent state).
    let replayed: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&replayed);
    replay(&window, move || cancel_scenario(Some(&sink)));
    let got: Vec<Outcome> = replayed.lock().unwrap().iter().map(|(o, _)| *o).collect();
    assert_eq!(
        got,
        vec![("requested", "cancelled", true)],
        "pinned schedule no longer reproduces the mid-run cancel"
    );
}

/// Priority lanes: once concurrent pushes into different lanes have both
/// landed, the high-priority payload is always claimed first.
#[test]
fn high_lane_is_claimed_before_low_after_publication() {
    let report = explore(Config::with_preemption_bound(2), || {
        let q = Arc::new(PrioQueue::<u32>::with_capacity(2));
        let t = {
            let q = Arc::clone(&q);
            shim_sync::thread::spawn(move || q.try_push(Priority::High, 1).unwrap())
        };
        q.try_push(Priority::Low, 3).unwrap();
        t.join().unwrap();
        assert_eq!(q.try_pop(), Some((Priority::High, 1)));
        assert_eq!(q.try_pop(), Some((Priority::Low, 3)));
        assert_eq!(q.try_pop(), None);
    });
    assert!(report.complete, "priority space not exhausted: {report:?}");
}
