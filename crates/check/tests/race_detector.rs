//! The happens-before race-detection lane.
//!
//! Two halves:
//!
//! 1. **Seeded races** — meta-tests proving the vector-clock detector
//!    actually catches planted unsynchronized accesses: a write-write
//!    race, a Relaxed-published read-write race (the classic broken
//!    message-passing idiom), and the Release/Acquire negative control
//!    that must stay silent. The planted-race test also parses the
//!    replayable trail out of the violation and replays it to the same
//!    race, closing the loop on the "replayable decision trail" claim.
//! 2. **Race-clean suites** — every scenario in the shared registry
//!    ([`adaptivetc_check::scenarios`]) re-explored with `check_races`
//!    under both sequential consistency and the x86-TSO store-buffer
//!    model. Any plain access through the `crate::sync` facade that the
//!    declared C11 orderings leave unordered fails the lane with a
//!    replayable trail — even though no assertion fires.
//!
//! Budgets honour `SHIM_SYNC_MAX_SCHEDULES` / `SHIM_SYNC_MAX_WALL_SECS`
//! (the CI race lane sets both); the in-tree defaults below keep a cold
//! run in tens of seconds.

use adaptivetc_check::scenarios::SCENARIOS;
use adaptivetc_check::sync::{AtomicBool, Ordering, RaceCell};
use adaptivetc_check::{explore, replay_with, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// Race-checking configuration: SC mode.
fn races(pb: u32) -> Config {
    Config {
        check_races: true,
        ..Config::with_preemption_bound(pb)
    }
}

/// Race-checking configuration: x86-TSO store-buffer mode.
fn tso_races(pb: u32) -> Config {
    Config {
        tso: true,
        ..races(pb)
    }
}

/// Run `f` under `cfg` expecting a violation; return the panic text.
fn refute(cfg: Config, f: fn()) -> String {
    let err = catch_unwind(AssertUnwindSafe(|| explore(cfg, f)))
        .expect_err("exploration unexpectedly found no violation");
    err.downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("violation panics carry a message")
}

/// Extract the `schedule (replay with shim_sync::replay): [..]` trail
/// from a violation message.
fn trail_of(msg: &str) -> Vec<usize> {
    let tail = msg
        .split("shim_sync::replay): [")
        .nth(1)
        .expect("violation message carries a trail");
    let list = tail.split(']').next().unwrap();
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| s.parse().expect("trail entries are numeric"))
        .collect()
}

/// Planted write-write race: both threads store through the same
/// `RaceCell` with no ordering edge at all. Every schedule is racy; the
/// detector must say so, name the race, and hand back a trail that
/// replays to the same violation.
#[test]
fn seeded_write_write_race_is_caught_and_replays() {
    fn body() {
        let c = Arc::new(RaceCell::new(0u32));
        let t = {
            let c = Arc::clone(&c);
            // SAFETY: the planted race — the detector aborts the execution
            // before either raw write is actually dereferenced unordered.
            shim_sync::thread::spawn(move || unsafe { *c.write() = 1 })
        };
        // SAFETY: as above; this is the other half of the planted race.
        unsafe { *c.write() = 2 };
        t.join().unwrap();
    }
    let msg = refute(races(2), body);
    assert!(
        msg.contains("data race on") && msg.contains("plain write"),
        "violation did not name the planted write-write race: {msg}"
    );

    // The decision trail in the report replays to the same race.
    let trail = trail_of(&msg);
    let replayed = catch_unwind(AssertUnwindSafe(|| replay_with(races(2), &trail, body)))
        .expect_err("replaying the trail must reproduce the race");
    let replayed = replayed
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        replayed.contains("data race on"),
        "replay lost the race: {replayed}"
    );
}

/// Broken message passing: the flag is published with `Relaxed`, so the
/// reader's plain read of the payload is unordered with the writer's
/// plain write — a C11 data race the detector must flag even though the
/// program asserts nothing.
#[test]
fn seeded_relaxed_publish_race_is_caught() {
    let msg = refute(races(2), || {
        let cell = Arc::new(RaceCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let t = {
            let (cell, flag) = (Arc::clone(&cell), Arc::clone(&flag));
            shim_sync::thread::spawn(move || {
                // SAFETY: single writer; the broken edge is the Relaxed
                // publish below, which is exactly what the test plants.
                unsafe { *cell.write() = 42 };
                flag.store(true, Ordering::Relaxed);
            })
        };
        if flag.load(Ordering::Relaxed) {
            // SAFETY: racy read — Relaxed/Relaxed creates no HB edge.
            let _ = unsafe { *cell.read() };
        }
        t.join().unwrap();
    });
    assert!(
        msg.contains("data race on"),
        "Relaxed publish was not flagged: {msg}"
    );
}

/// Negative control: the same shape with a Release store and Acquire
/// load is properly synchronized — the detector must stay silent in
/// every schedule, in both SC and TSO modes.
#[test]
fn release_acquire_publish_is_race_free() {
    fn body() {
        let cell = Arc::new(RaceCell::new(0u32));
        let flag = Arc::new(AtomicBool::new(false));
        let t = {
            let (cell, flag) = (Arc::clone(&cell), Arc::clone(&flag));
            shim_sync::thread::spawn(move || {
                // SAFETY: single writer, published by the Release store.
                unsafe { *cell.write() = 42 };
                flag.store(true, Ordering::Release);
            })
        };
        if flag.load(Ordering::Acquire) {
            // SAFETY: the Acquire load orders this read after the write.
            assert_eq!(unsafe { *cell.read() }, 42);
        }
        t.join().unwrap();
    }
    let report = explore(races(2), body);
    assert!(report.complete, "SC space not exhausted: {report:?}");
    let report = explore(tso_races(2), body);
    assert!(report.complete, "TSO space not exhausted: {report:?}");
}

/// Every registered protocol scenario is race-free under sequential
/// consistency at the current bounds: the HB engine watches every
/// `RaceCell` access in the ported deque/runtime sources while the
/// scenario's own assertions also run.
#[test]
fn all_scenarios_race_free_sc() {
    for s in SCENARIOS {
        let report = explore(races(2), s.run);
        println!("race-check[sc] {}: {report:?}", s.name);
    }
}

/// The same sweep under the x86-TSO store-buffer model: store buffering
/// must not open a window the declared orderings leave unordered.
#[test]
fn all_scenarios_race_free_tso() {
    for s in SCENARIOS {
        let report = explore(tso_races(2), s.run);
        println!("race-check[tso] {}: {report:?}", s.name);
    }
}
