//! Bounded model checking of the `need_task` signal: a starving thief's
//! repeated steal failures must raise the flag exactly past the strict
//! `max_stolen_num` threshold, the owner's acknowledgement must clear it,
//! and the flag never regresses while only failures are recorded.

use adaptivetc_check::signal::NeedTask;
use adaptivetc_check::sync::{AtomicBool, Ordering};
use adaptivetc_check::{explore, Config};
use std::sync::Arc;

/// Two failures with `max_stolen_num = 1` (strict `>`): by the time the
/// thief is done, every schedule must show the flag raised, and the
/// owner's poll observations never go true -> false before it clears.
#[test]
fn delivery_past_threshold() {
    let report = explore(Config::with_preemption_bound(2), || {
        let sig = Arc::new(NeedTask::new(1));
        let done = Arc::new(AtomicBool::new(false));
        let thief = {
            let (sig, done) = (Arc::clone(&sig), Arc::clone(&done));
            shim_sync::thread::spawn(move || {
                sig.record_steal_failure();
                sig.record_steal_failure();
                done.store(true, Ordering::SeqCst);
            })
        };
        let mut acknowledged = false;
        let mut prev = false;
        for _ in 0..6 {
            let now = sig.needs_task();
            assert!(
                !prev || now,
                "need_task regressed true -> false with no acknowledgement"
            );
            prev = now;
            if now {
                sig.acknowledge();
                assert!(!sig.needs_task(), "acknowledge did not clear need_task");
                assert_eq!(sig.stolen_num(), 0, "acknowledge did not reset stolen_num");
                acknowledged = true;
                break;
            }
        }
        thief.join().unwrap();
        if !acknowledged {
            // Both failures are visible now; delivery must have happened.
            assert!(
                sig.needs_task(),
                "two failures past the threshold never raised need_task"
            );
        }
        assert!(sig.stolen_num() <= 2, "stolen_num overshot the failures");
    });
    assert!(
        report.complete,
        "need_task delivery space not exhausted: {report:?}"
    );
    println!("signal_delivery::delivery_past_threshold: {report:?}");
}

/// The threshold is strict: a single failure with `max_stolen_num = 1`
/// never raises the flag, in any schedule.
#[test]
fn strict_threshold_no_false_positive() {
    let report = explore(Config::with_preemption_bound(2), || {
        let sig = Arc::new(NeedTask::new(1));
        let thief = {
            let sig = Arc::clone(&sig);
            shim_sync::thread::spawn(move || {
                sig.record_steal_failure();
            })
        };
        let polled = sig.needs_task();
        assert!(
            !polled,
            "one failure must not exceed a strict threshold of 1"
        );
        thief.join().unwrap();
        assert!(!sig.needs_task());
        assert_eq!(sig.stolen_num(), 1);
    });
    assert!(report.complete, "space not exhausted: {report:?}");
}

/// A successful steal resets the count and clears the flag: delivery is
/// withdrawn once the thief is fed, in every interleaving with the
/// victim's poll.
#[test]
fn success_clears_signal() {
    let report = explore(Config::with_preemption_bound(2), || {
        let sig = Arc::new(NeedTask::new(1));
        let thief = {
            let sig = Arc::clone(&sig);
            shim_sync::thread::spawn(move || {
                sig.record_steal_failure();
                sig.record_steal_failure();
                sig.record_steal_success();
            })
        };
        let _ = sig.needs_task(); // racing poll, any answer is legal
        thief.join().unwrap();
        assert!(!sig.needs_task(), "success must clear need_task");
        assert_eq!(sig.stolen_num(), 0, "success must reset stolen_num");
    });
    assert!(report.complete, "space not exhausted: {report:?}");
}
