//! Bounded model checking of the fast→check→fast_2 transition: a
//! miniature adaptive worker — driven by the same pure FSM kernel the
//! threaded engine uses (`adaptivetc_runtime::fsm`) — walks fake tasks,
//! reacts to a concurrent starving thief via the real `NeedTask` signal,
//! and hands a child over through the real THE deque's special-task
//! protocol. Every interleaving at preemption bound 3 is explored.

use adaptivetc_check::signal::NeedTask;
use adaptivetc_check::the::{PopSpecial, StealOutcome, TheDeque};
use adaptivetc_check::{explore, Config};
use adaptivetc_runtime::fsm::{self, Version};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

const BASE_CUTOFF: u32 = 1;
const CHILD: u32 = 7;
const SPECIAL: u32 = 100;

/// What one schedule did: (owner entered the special section, thief's
/// steal result). The thief-wins path needs three preemptions (owner ->
/// thief for the failures, back to the owner for the special section,
/// back to the thief before the owner's pop), so this suite explores at
/// preemption bound 3 — strictly more than the 2-bound floor the other
/// suites guarantee.
type Outcome = (bool, Option<u32>);

#[test]
fn fast_check_fast2_walk_under_thief() {
    let seen: Arc<Mutex<BTreeSet<Outcome>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    let report = explore(Config::with_preemption_bound(3), move || {
        let deque = Arc::new(TheDeque::<u32>::new(8));
        let signal = Arc::new(NeedTask::new(1));
        // A starving thief: two failed steal attempts raise need_task on
        // its victim (strict threshold 1), then one real attempt.
        let thief = {
            let (deque, signal) = (Arc::clone(&deque), Arc::clone(&signal));
            shim_sync::thread::spawn(move || {
                let mut stolen = None;
                for _ in 0..3 {
                    match deque.steal() {
                        StealOutcome::Stolen(v) => {
                            signal.record_steal_success();
                            stolen = Some(v);
                            break;
                        }
                        StealOutcome::Empty => {
                            signal.record_steal_failure();
                        }
                    }
                }
                stolen
            })
        };

        // The owner starts past the cut-off: fast has fallen through to
        // the check version (fake tasks polling need_task per node).
        assert!(!fsm::task_mode(BASE_CUTOFF, BASE_CUTOFF, false));
        assert_eq!(fsm::fallthrough(false), Version::Check);
        let mut version = Version::Check;
        let mut fake_tasks = 0u32;
        let mut special_entered = false;
        for _node in 0..4 {
            assert_eq!(version, Version::Check);
            version = fsm::after_poll(signal.needs_task());
            if version == Version::Special {
                // The special section: acknowledge, publish the special
                // task, run its child through fast_2 with depth reset.
                special_entered = true;
                signal.acknowledge();
                let (reentry, depth) = fsm::special_reentry();
                assert_eq!(reentry, Version::Fast2);
                assert!(
                    fsm::task_mode(depth, BASE_CUTOFF, true),
                    "fast_2 must create tasks again at the reset depth"
                );
                assert_eq!(fsm::effective_cutoff(BASE_CUTOFF, true), 2 * BASE_CUTOFF);
                deque.push_special(SPECIAL).unwrap();
                deque.push(CHILD).unwrap();
                // The child's subtree runs; its continuation entry may be
                // stolen meanwhile. Then the owner pops what is left.
                let popped = deque.pop();
                match deque.pop_special() {
                    PopSpecial::Reclaimed(v) => {
                        assert_eq!(v, SPECIAL);
                        assert_eq!(
                            popped,
                            Some(CHILD),
                            "special reclaimed but the child is gone"
                        );
                    }
                    PopSpecial::ChildStolen => {
                        assert_eq!(
                            popped, None,
                            "THE reported ChildStolen but the owner also popped the child"
                        );
                    }
                }
                break;
            }
            fake_tasks += 1;
        }
        let stolen = thief.join().unwrap();
        // Exactly-once: the child exists iff the special section ran, and
        // then exactly one party consumed it (checked above for the owner
        // side; here the cross-thread half).
        if stolen.is_some() {
            assert!(special_entered, "thief stole from an empty worker");
            assert_eq!(stolen, Some(CHILD), "thief took something but the child");
        }
        if !special_entered {
            assert!(
                fake_tasks > 0,
                "owner neither ran fake tasks nor the special section"
            );
        }
        sink.lock().unwrap().insert((special_entered, stolen));
    });
    assert!(
        report.complete,
        "FSM transition space not exhausted: {report:?}"
    );
    let seen = seen.lock().unwrap().clone();
    // Both FSM paths must be reachable: staying in check (thief never
    // starves in time) and the full check→special→fast_2 walk; and within
    // the latter, both the owner keeping and the thief winning the child.
    assert!(
        seen.contains(&(false, None)),
        "never explored the pure fake-task path: {seen:?}"
    );
    assert!(
        seen.contains(&(true, None)),
        "never explored special section with the owner keeping the child: {seen:?}"
    );
    assert!(
        seen.contains(&(true, Some(CHILD))),
        "never explored the thief winning the special task's child: {seen:?}"
    );
    println!("fsm_transition::fast_check_fast2_walk_under_thief: {report:?}, outcomes {seen:?}");
}
