//! The memory-ordering relaxation campaign for the THE deque.
//!
//! PR 6 relaxed every SeqCst access on THE's hot paths that is ordered by
//! something stronger — a SeqCst fence or the THE lock — down to
//! `Relaxed`. This suite is the proof obligation: **part A** re-explores
//! the real, relaxed `the.rs` under the x86-TSO store-buffer model (the
//! weakest model the explorer supports, and the one that distinguishes a
//! fence from a SeqCst access), and **part B** shows the suite has teeth
//! by refuting every *further* weakening on a Dekker skeleton of the same
//! shape: each profile below maps to a concrete site in `the.rs`, and
//! removing the ordering that site still relies on makes the exploration
//! panic with a double extraction.
//!
//! Site → profile map (orderings as landed; see ORDERINGS.toml):
//!
//! | `the.rs` site                      | landed      | guarded by        | refutation            |
//! |------------------------------------|-------------|-------------------|-----------------------|
//! | `pop`: `tail` store, `head` load   | Relaxed     | owner SeqCst fence| `pop_fence: false`    |
//! | `steal`: `head` store, restores    | Relaxed     | thief SeqCst fence| `steal_fence: false`  |
//! | `steal`: `tail` re-validation load | SeqCst      | (is the anchor)   | part A would fail     |
//! | `pop` slow / `pop_special` / locked `head` reads | Relaxed | THE lock | `locked: false` |
//!
//! The Chase-Lev backend keeps its seed orderings: its pop fence and the
//! SeqCst last-element CAS are exactly the two anchors this campaign
//! proves irreducible for THE, and no site beyond them is SeqCst there.

use adaptivetc_check::sync::{fence, AtomicBool, AtomicU64, Mutex, Ordering};
use adaptivetc_check::the::{PopSpecial, StealOutcome, TheDeque};
use adaptivetc_check::{explore, linearizable, Config, OwnerOp};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

fn tso(pb: u32) -> Config {
    Config {
        tso: true,
        ..Config::with_preemption_bound(pb)
    }
}

// ---------------------------------------------------------------------------
// Part A: the real THE deque, as landed, survives TSO store buffering.
// ---------------------------------------------------------------------------

/// Push/pop/steal linearizability of the *relaxed* THE deque under the
/// store-buffer model. A wrong relaxation of the pop-side Dekker pair
/// shows up here as a double extraction (history not linearizable).
#[test]
fn relaxed_the_linearizable_under_tso() {
    let report = explore(tso(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        d.push(1).unwrap();
        d.push(2).unwrap();
        let thief = {
            let d = Arc::clone(&d);
            shim_sync::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    got.push(match d.steal() {
                        StealOutcome::Stolen(v) => Some(v),
                        StealOutcome::Empty => None,
                    });
                }
                got
            })
        };
        let mut owner = vec![OwnerOp::Push(1), OwnerOp::Push(2)];
        for _ in 0..2 {
            owner.push(OwnerOp::Pop(d.pop()));
        }
        let steals = thief.join().unwrap();
        assert!(
            linearizable(&owner, &steals),
            "history not linearizable under TSO: owner {owner:?}, steals {steals:?}"
        );
    });
    assert!(
        report.complete,
        "relaxed THE TSO space not exhausted: {report:?}"
    );
    println!("ordering_campaign::relaxed_the_linearizable_under_tso: {report:?}");
}

/// The special-task resolution — whose accesses are now all Relaxed under
/// the THE lock — stays *exact* under TSO: `ChildStolen` iff the thief
/// took the child, and the child is consumed exactly once.
#[test]
fn relaxed_the_special_resolution_exact_under_tso() {
    let report = explore(tso(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        d.push_special(10).unwrap();
        d.push(20).unwrap();
        let thief = {
            let d = Arc::clone(&d);
            shim_sync::thread::spawn(move || match d.steal() {
                StealOutcome::Stolen(v) => Some(v),
                StealOutcome::Empty => None,
            })
        };
        let popped = d.pop();
        let spec = d.pop_special();
        let stolen = thief.join().unwrap();
        assert_ne!(stolen, Some(10), "thief stole the special task itself");
        let owner_got = popped == Some(20);
        let thief_got = stolen == Some(20);
        assert!(
            owner_got ^ thief_got,
            "child consumed {} times under TSO",
            u8::from(owner_got) + u8::from(thief_got)
        );
        let child_stolen = matches!(spec, PopSpecial::ChildStolen);
        assert_eq!(
            child_stolen, thief_got,
            "locked resolution lost exactness under TSO"
        );
    });
    assert!(
        report.complete,
        "relaxed THE special TSO space not exhausted: {report:?}"
    );
    println!("ordering_campaign::relaxed_the_special_resolution_exact_under_tso: {report:?}");
}

// ---------------------------------------------------------------------------
// Part B: every *further* weakening is refuted on the Dekker skeleton.
// ---------------------------------------------------------------------------

/// The shape of THE's last-element arbitration, stripped to its Dekker
/// core. One entry lives at index 0: `tail = 1`, `head = 0`. The owner
/// decrements `tail`, fences (or not), reads `head`; the thief raises
/// `head`, fences (or not), re-reads `tail`. Each side claims the entry
/// when its read proves the other side had not moved. Exactly the landed
/// orderings: Relaxed stores and loads, SeqCst re-validation load, with
/// the fences as the only global anchors.
fn dekker_round(pop_fence: bool, steal_fence: bool) {
    let head = Arc::new(AtomicU64::new(0));
    let tail = Arc::new(AtomicU64::new(1));
    // The thief publishes its verdict through a model atomic instead of
    // its return value. This is load-bearing: the real `steal` keeps
    // executing after the re-validation load (slot read, head restore),
    // so the model must have a scheduling point there too. A bare return
    // would glue the thief's store-buffer drain (thread exit) to the
    // load, and the owner could never observe the stale `head` this
    // refutation exists to expose.
    let thief_won = Arc::new(AtomicBool::new(false));
    let thief = {
        let head = Arc::clone(&head);
        let tail = Arc::clone(&tail);
        let thief_won = Arc::clone(&thief_won);
        shim_sync::thread::spawn(move || {
            let h = head.load(Ordering::Relaxed);
            head.store(h + 1, Ordering::Relaxed);
            if steal_fence {
                fence(Ordering::SeqCst);
            }
            // The re-validation anchor (kept SeqCst in the.rs).
            let t = tail.load(Ordering::SeqCst);
            thief_won.store(h < t, Ordering::Relaxed);
        })
    };
    let t = tail.load(Ordering::Relaxed) - 1;
    tail.store(t, Ordering::Relaxed);
    if pop_fence {
        fence(Ordering::SeqCst);
    }
    let h = head.load(Ordering::Relaxed);
    let owner_wins = h <= t;
    thief.join().unwrap();
    let thief_wins = thief_won.load(Ordering::Relaxed);
    assert!(
        !(owner_wins && thief_wins),
        "double extraction of the last entry"
    );
}

fn refuted(pop_fence: bool, steal_fence: bool) -> bool {
    // For a refutation only reachability matters, not exhaustion.
    catch_unwind(AssertUnwindSafe(|| {
        explore(tso(2), move || dekker_round(pop_fence, steal_fence));
    }))
    .is_err()
}

/// The landed profile — both fences present, everything else Relaxed —
/// explores clean under TSO: the campaign could not have gone further on
/// the Dekker pair itself.
#[test]
fn landed_fence_profile_is_safe_under_tso() {
    let report = explore(tso(2), || dekker_round(true, true));
    assert!(report.complete, "Dekker space not exhausted: {report:?}");
}

/// Weakening the owner's pop fence (the.rs `pop`) admits store buffering:
/// the owner's tail decrement hides in its write buffer while the thief
/// revalidates, and both sides claim the last entry.
#[test]
fn dropping_the_pop_fence_is_refuted() {
    assert!(
        refuted(false, true),
        "suite failed to refute a pop without its SeqCst fence"
    );
}

/// Weakening the thief's fence (the.rs `steal`) is the symmetric bug.
#[test]
fn dropping_the_steal_fence_is_refuted() {
    assert!(
        refuted(true, false),
        "suite failed to refute a steal without its SeqCst fence"
    );
}

/// Dropping both is, a fortiori, refuted too (the classic SB outcome).
#[test]
fn dropping_both_fences_is_refuted() {
    assert!(
        refuted(false, false),
        "suite failed to refute fence-free THE"
    );
}

/// The `head` accesses relaxed in `steal`/`pop_special` are sound *only
/// because* they sit under the THE lock: the same read-increment shape
/// without the lock lets two thieves claim one index. This is the proof
/// that `Relaxed` there leans on mutual exclusion, not luck.
fn locked_steal_round(locked: bool) {
    let head = Arc::new(AtomicU64::new(0));
    let lock = Arc::new(Mutex::new(()));
    let taken: Arc<[AtomicBool; 2]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
    let mut thieves = Vec::new();
    for _ in 0..2 {
        let head = Arc::clone(&head);
        let lock = Arc::clone(&lock);
        let taken = Arc::clone(&taken);
        thieves.push(shim_sync::thread::spawn(move || {
            let _guard = locked.then(|| lock.lock());
            let h = head.load(Ordering::Relaxed);
            if h < 2 {
                head.store(h + 1, Ordering::Relaxed);
                assert!(
                    !taken[h as usize].swap(true, Ordering::Relaxed),
                    "index {h} stolen twice"
                );
            }
        }));
    }
    for t in thieves {
        t.join().unwrap();
    }
}

#[test]
fn locked_head_accesses_are_safe() {
    let report = explore(tso(2), || locked_steal_round(true));
    assert!(
        report.complete,
        "locked-steal space not exhausted: {report:?}"
    );
}

#[test]
fn dropping_the_lock_is_refuted() {
    let caught = catch_unwind(AssertUnwindSafe(|| {
        explore(tso(2), || locked_steal_round(false));
    }))
    .is_err();
    assert!(
        caught,
        "suite failed to refute relaxed head accesses without the lock"
    );
}
