//! Bounded model checking of the copy-on-steal workspace handshake.
//!
//! The runtime's copy-on-steal protocol (see `adaptivetc-runtime`'s
//! `engine` module) defers the taskprivate workspace clone of a spawned
//! continuation until a thief actually steals it. The thief then obtains a
//! *frame-pristine* workspace through a deposit cell guarded by two flags:
//!
//! * the owner deposits a pristine clone — at a service poll when the
//!   thief's `ws_requested` flag is up, or unconditionally at the pop
//!   conflict that reveals the theft — and raises `ws_ready`;
//! * the thief consumes the deposit with a `ws_ready` swap, so a later
//!   handshake on the same (re-pushed) frame starts from a lowered flag.
//!
//! These suites re-run that handshake against the real THE and Chase-Lev
//! sources under every bounded interleaving. The thief never spins in the
//! model: outcomes are verified *post hoc* after both threads join, which
//! keeps the schedule space finite while still checking the protocol's
//! safety net — whenever an entry is stolen, a pristine deposit is (or
//! becomes) available, and it is never the dirty mid-child value.

use adaptivetc_check::chase_lev::{ChaseLevDeque, ClSteal};
use adaptivetc_check::sync::{AtomicBool, AtomicU32, Ordering};
use adaptivetc_check::the::{StealOutcome, TheDeque};
use adaptivetc_check::{explore, Config};
use std::sync::Arc;

/// The frame-pristine workspace value the owner must hand to a thief.
const PRISTINE: u32 = 7;
/// The live workspace value while a child executes (never stealable).
const DIRTY: u32 = 99;
/// Empty deposit slot.
const EMPTY: u32 = 0;

/// Model of the `Frame` workspace handshake fields.
struct WsCell {
    requested: AtomicBool,
    ready: AtomicBool,
    slot: AtomicU32,
}

impl WsCell {
    fn new() -> Self {
        WsCell {
            requested: AtomicBool::new(false),
            ready: AtomicBool::new(false),
            slot: AtomicU32::new(EMPTY),
        }
    }

    /// Owner side: publish a pristine clone unless one is already up.
    fn deposit(&self, ws: u32) {
        if !self.ready.load(Ordering::Acquire) {
            self.slot.store(ws, Ordering::Release);
            self.ready.store(true, Ordering::Release);
        }
        self.requested.store(false, Ordering::Release);
    }

    /// Thief side: consume the deposit if published (`ws_ready` swap).
    fn try_take(&self) -> Option<u32> {
        if !self.ready.swap(false, Ordering::AcqRel) {
            return None;
        }
        Some(self.slot.swap(EMPTY, Ordering::AcqRel))
    }
}

/// One owner spawn round against a THE deque: push the frame entry, run
/// the child on the (dirty) live workspace, undo, pop. A pop conflict is
/// the theft signal: back-stop deposit, exactly as `frame_loop_inplace`.
/// Returns whether the owner retained the entry.
fn owner_round_the(d: &TheDeque<u32>, ws: &WsCell, service: bool) -> bool {
    d.push(1).unwrap();
    // apply: the live workspace is dirty while the child runs. A service
    // poll in this window must deposit the *pristine* value (the engine
    // reconstructs it by unwinding the trail, never the live bytes).
    let live = DIRTY;
    if service && ws.requested.load(Ordering::Acquire) {
        ws.deposit(PRISTINE);
    }
    // undo: back to frame-pristine.
    let live = if live == DIRTY { PRISTINE } else { live };
    match d.pop() {
        Some(_) => true,
        None => {
            ws.deposit(live);
            false
        }
    }
}

/// Thief side: one steal attempt, then at most one non-blocking take.
/// Returns (stole the entry, workspace taken during the run).
fn thief_round_the(d: &TheDeque<u32>, ws: &WsCell, request: bool) -> (bool, Option<u32>) {
    match d.steal() {
        StealOutcome::Stolen(_) => {
            if request {
                ws.requested.store(true, Ordering::Release);
            }
            (true, ws.try_take())
        }
        StealOutcome::Empty => (false, None),
    }
}

/// Post-hoc oracle, run after both threads joined: exactly one side owns
/// the entry, and a theft always ends with a pristine workspace for the
/// thief — taken live, or still deposited now that the owner is done.
fn verify(stolen: bool, taken: Option<u32>, popped: bool, ws: &WsCell) {
    assert!(
        stolen != popped,
        "entry must be consumed exactly once (stolen={stolen}, popped={popped})"
    );
    if stolen {
        let got = match taken {
            Some(v) => v,
            None => ws
                .try_take()
                .expect("owner finished without publishing a deposit for the thief"),
        };
        assert_eq!(got, PRISTINE, "thief received a non-pristine workspace");
    } else {
        assert_eq!(taken, None, "no deposit may exist for an unstolen entry");
        assert!(
            ws.try_take().is_none(),
            "owner deposited despite retaining the entry"
        );
    }
}

/// The pop-conflict race window on THE: the steal and the owner's pop
/// contend for the single entry; whoever loses must leave the thief with a
/// pristine deposit.
#[test]
fn the_conflict_backstop_feeds_thief() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        let ws = Arc::new(WsCell::new());
        let thief = {
            let (d, ws) = (Arc::clone(&d), Arc::clone(&ws));
            shim_sync::thread::spawn(move || thief_round_the(&d, &ws, false))
        };
        let popped = owner_round_the(&d, &ws, false);
        let (stolen, taken) = thief.join().unwrap();
        verify(stolen, taken, popped, &ws);
    });
    assert!(
        report.complete,
        "THE conflict space not exhausted: {report:?}"
    );
    println!("copy_on_steal::the_conflict_backstop_feeds_thief: {report:?}");
}

/// The request/service path on THE: the thief raises `ws_requested`, the
/// owner services it mid-child (while the live workspace is dirty), and
/// the deposit must still be the pristine reconstruction.
#[test]
fn the_service_deposit_is_pristine() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        let ws = Arc::new(WsCell::new());
        let thief = {
            let (d, ws) = (Arc::clone(&d), Arc::clone(&ws));
            shim_sync::thread::spawn(move || thief_round_the(&d, &ws, true))
        };
        let popped = owner_round_the(&d, &ws, true);
        let (stolen, taken) = thief.join().unwrap();
        verify(stolen, taken, popped, &ws);
    });
    assert!(
        report.complete,
        "THE service space not exhausted: {report:?}"
    );
}

/// Two successive handshakes on the same frame shell (the thief that
/// materialised a frame re-pushes it and is robbed in turn). The consuming
/// `ws_ready` *swap* in `try_take` is what keeps round two alive: a plain
/// load would leave the flag up, the round-two conflict backstop would
/// skip its deposit, and the second thief would starve.
#[test]
fn the_second_handshake_not_starved_by_stale_ready() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        let ws = Arc::new(WsCell::new());
        let thief = {
            let (d, ws) = (Arc::clone(&d), Arc::clone(&ws));
            shim_sync::thread::spawn(move || {
                let r1 = thief_round_the(&d, &ws, false);
                let r2 = thief_round_the(&d, &ws, false);
                (r1, r2)
            })
        };
        let popped1 = owner_round_the(&d, &ws, false);
        // Round two re-pushes the same frame; its pristine value is the
        // same (the workspace invariant is path-based, not round-based).
        let popped2 = owner_round_the(&d, &ws, false);
        let ((stolen1, taken1), (stolen2, taken2)) = thief.join().unwrap();
        // The thief's two steal attempts race both rounds; order in the
        // deque is FIFO for thieves, so attempt i can only take entry i.
        let (mut stolen, mut taken_ok) = (0, true);
        for (s, t) in [(stolen1, taken1), (stolen2, taken2)] {
            if s {
                stolen += 1;
            }
            if let Some(v) = t {
                taken_ok &= v == PRISTINE;
            }
        }
        let popped = [popped1, popped2].iter().filter(|&&p| p).count();
        assert_eq!(stolen + popped, 2, "each entry consumed exactly once");
        assert!(taken_ok, "a thief received a non-pristine workspace");
        // Every theft that did not take its deposit live must find one now.
        let mut owed = stolen;
        if taken1.is_some() {
            owed -= 1;
        }
        if taken2.is_some() {
            owed -= 1;
        }
        for _ in 0..owed {
            assert_eq!(
                ws.try_take(),
                Some(PRISTINE),
                "a stolen round ended with no deposit published"
            );
        }
    });
    assert!(
        report.complete,
        "THE two-round space not exhausted: {report:?}"
    );
    println!("copy_on_steal::the_second_handshake_not_starved_by_stale_ready: {report:?}");
}

/// The same conflict window on the Chase-Lev backend, whose pop/steal race
/// resolves through CAS rather than the THE lock; `Retry` outcomes are
/// re-attempted as the engine's backend wrapper does.
#[test]
fn chase_lev_conflict_backstop_feeds_thief() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(ChaseLevDeque::<u32>::new());
        let ws = Arc::new(WsCell::new());
        let thief = {
            let (d, ws) = (Arc::clone(&d), Arc::clone(&ws));
            shim_sync::thread::spawn(move || loop {
                match d.steal() {
                    ClSteal::Stolen(_) => break (true, ws.try_take()),
                    ClSteal::Empty => break (false, None),
                    ClSteal::Retry => {}
                }
            })
        };
        d.push(1);
        let live = PRISTINE; // apply → child → undo, compressed: the pop
                             // races the steal with the workspace pristine.
        let popped = match d.pop() {
            Some(_) => true,
            None => {
                ws.deposit(live);
                false
            }
        };
        let (stolen, taken) = thief.join().unwrap();
        verify(stolen, taken, popped, &ws);
    });
    assert!(
        report.complete,
        "Chase-Lev conflict space not exhausted: {report:?}"
    );
    println!("copy_on_steal::chase_lev_conflict_backstop_feeds_thief: {report:?}");
}
