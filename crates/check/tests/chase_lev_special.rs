//! Bounded model checking of the Chase-Lev special-task steal: the
//! two-step CAS (retire the special, then loop to claim its child) raced
//! against the owner popping the child, and the conservative
//! `ChildStolen` resolution when the owner wins between the two steps.
//! Includes the pinned-schedule regression replay for that race window.

use adaptivetc_check::chase_lev::{ChaseLevDeque, ClSteal};
use adaptivetc_check::the::PopSpecial;
use adaptivetc_check::{current_trail, explore, replay, Config};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Outcome of one interleaving: (owner pop, pop_special says ChildStolen,
/// thief steal result).
type Outcome = (Option<u32>, bool, Option<u32>);

/// Outcomes paired with the decision trail that produced them.
type TraceSet = BTreeSet<(Outcome, Vec<usize>)>;

fn steal_to_completion(d: &ChaseLevDeque<u32>) -> Option<u32> {
    loop {
        match d.steal() {
            ClSteal::Stolen(v) => return Some(v),
            ClSteal::Empty => return None,
            ClSteal::Retry => continue,
        }
    }
}

fn scenario(sink: Option<&Mutex<TraceSet>>) {
    let d = Arc::new(ChaseLevDeque::<u32>::with_capacity(16));
    d.push_special(10);
    d.push(20);
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || steal_to_completion(&d))
    };
    let popped = d.pop();
    let spec = d.pop_special();
    let stolen = thief.join().unwrap();

    // The special entry is retired, never delivered to a thief.
    assert_ne!(stolen, Some(10), "thief stole the special task itself");
    // The child is consumed exactly once.
    let owner_got = popped == Some(20);
    let thief_got = stolen == Some(20);
    assert!(
        owner_got ^ thief_got,
        "child consumed {} times (popped {popped:?}, stolen {stolen:?})",
        u8::from(owner_got) + u8::from(thief_got)
    );
    let child_stolen = match spec {
        PopSpecial::Reclaimed(v) => {
            assert_eq!(v, 10, "reclaimed a different special");
            false
        }
        PopSpecial::ChildStolen => true,
    };
    // Soundness of the conservative resolution: whenever the thief really
    // took the child, the owner MUST see ChildStolen (it will wait for the
    // child). The converse does not hold — if the owner popped the child
    // between the thief's two CAS steps, the retired special still reads
    // as ChildStolen and the owner waits for a child it ran itself. That
    // over-synchronization is the documented benign race.
    if thief_got {
        assert!(
            child_stolen,
            "thief took the child but pop_special said Reclaimed: lost child"
        );
    }
    if !child_stolen {
        assert!(
            owner_got,
            "Reclaimed but the owner never got the child either"
        );
    }
    if let Some(sink) = sink {
        let trail = current_trail().expect("inside exploration");
        sink.lock()
            .unwrap()
            .insert(((popped, child_stolen, stolen), trail));
    }
}

/// Exhaustively explore the two-step CAS race at preemption bound 2 and
/// pin the exact set of reachable resolutions.
#[test]
fn two_step_cas_resolutions() {
    let seen: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    let report = explore(Config::with_preemption_bound(2), move || {
        scenario(Some(&sink));
    });
    assert!(
        report.complete,
        "Chase-Lev special-steal space not exhausted: {report:?}"
    );
    let outcomes: BTreeSet<Outcome> = seen.lock().unwrap().iter().map(|(o, _)| *o).collect();
    let expected: BTreeSet<Outcome> = [
        // Thief too slow: owner pops the child and reclaims the special.
        (Some(20), false, None),
        // Thief wins both CAS steps: child stolen, owner told so.
        (None, true, Some(20)),
        // The race window: the owner pops the child between the thief's
        // two CAS steps. The special is already retired, so the owner
        // conservatively sees ChildStolen even though it ran the child
        // itself; nothing is lost or duplicated.
        (Some(20), true, None),
    ]
    .into_iter()
    .collect();
    assert_eq!(
        outcomes, expected,
        "reachable resolutions of the two-step CAS steal changed"
    );
    println!("chase_lev_special::two_step_cas_resolutions: {report:?}, outcomes {outcomes:?}");
}

/// Regression pin: replay a schedule that drives the owner through the
/// thief's CAS window (the conservative `ChildStolen` while the owner
/// popped the child itself) and require the same resolution again. The
/// schedule is re-captured by exploration first, so the pin tracks the
/// protocol, not incidental yield-point numbering.
#[test]
fn race_window_schedule_replays() {
    let seen: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&seen);
    let report = explore(Config::with_preemption_bound(2), move || {
        scenario(Some(&sink));
    });
    assert!(report.complete, "exploration incomplete: {report:?}");
    let window: Vec<usize> = seen
        .lock()
        .unwrap()
        .iter()
        .find(|((popped, child_stolen, stolen), _)| {
            *popped == Some(20) && *child_stolen && stolen.is_none()
        })
        .map(|(_, trail)| trail.clone())
        .expect("the conservative race window must be reachable at bound 2");
    // Deterministic replay of the pinned interleaving, asserting the same
    // conservative resolution (scenario() panics on any other).
    let replayed: Arc<Mutex<TraceSet>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&replayed);
    replay(&window, move || scenario(Some(&sink)));
    let got: Vec<Outcome> = replayed.lock().unwrap().iter().map(|(o, _)| *o).collect();
    assert_eq!(
        got,
        vec![(Some(20), true, None)],
        "pinned schedule no longer reproduces the conservative resolution"
    );
}
