//! Meta-tests of the harness itself: a seeded race must be *caught* and
//! reported loudly with a replayable schedule trace, and replaying that
//! trace must deterministically reproduce the violation. If these fail,
//! every green suite in this crate is meaningless.

use adaptivetc_check::sync::{AtomicU64, Ordering};
use adaptivetc_check::{explore, replay, Config};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::Arc;

/// The classic lost-update race: two threads do a non-atomic
/// read-modify-write of the same counter. Some interleaving must lose an
/// increment, and the explorer must fail with a replayable trace.
fn racy_increment() {
    let c = Arc::new(AtomicU64::new(0));
    let t = {
        let c = Arc::clone(&c);
        shim_sync::thread::spawn(move || {
            let v = c.load(Ordering::SeqCst);
            c.store(v + 1, Ordering::SeqCst);
        })
    };
    let v = c.load(Ordering::SeqCst);
    c.store(v + 1, Ordering::SeqCst);
    t.join().unwrap();
    assert_eq!(c.load(Ordering::SeqCst), 2, "lost update");
}

#[test]
fn seeded_race_is_caught_with_replayable_trace() {
    let err = catch_unwind(AssertUnwindSafe(|| {
        explore(Config::with_preemption_bound(2), racy_increment);
    }))
    .expect_err("the explorer missed a lost-update race at bound 2");
    let msg = err
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| err.downcast_ref::<&str>().map(|s| s.to_string()))
        .expect("violation payload is not a string");
    assert!(
        msg.contains("lost update"),
        "violation report lost the assertion message: {msg}"
    );
    assert!(
        msg.contains("replay with shim_sync::replay"),
        "violation report has no replay instructions: {msg}"
    );
    // Extract the printed trail (a debug-formatted Vec<usize>) and replay
    // it: the same interleaving must hit the same violation, first try.
    let trail: Vec<usize> = {
        let start = msg.find("): [").expect("no trail in report: {msg}") + 3;
        let end = msg[start..].find(']').unwrap() + start;
        msg[start + 1..end]
            .split(',')
            .filter(|s| !s.trim().is_empty())
            .map(|s| s.trim().parse().unwrap())
            .collect()
    };
    let replayed = catch_unwind(AssertUnwindSafe(|| {
        replay(&trail, racy_increment);
    }))
    .expect_err("replaying the violating schedule did not reproduce the race");
    let rmsg = replayed
        .downcast_ref::<String>()
        .cloned()
        .or_else(|| replayed.downcast_ref::<&str>().map(|s| s.to_string()))
        .unwrap_or_default();
    assert!(
        rmsg.contains("lost update"),
        "replay failed for a different reason: {rmsg}"
    );
}

/// One round of the store-buffering litmus (SB): each thread stores its
/// flag, then reads the other's. Returns the pair of reads.
fn sb_round(fenced: bool) -> (u64, u64) {
    use adaptivetc_check::sync::fence;
    let x = Arc::new(AtomicU64::new(0));
    let y = Arc::new(AtomicU64::new(0));
    let t = {
        let x = Arc::clone(&x);
        let y = Arc::clone(&y);
        shim_sync::thread::spawn(move || {
            x.store(1, Ordering::Relaxed);
            if fenced {
                fence(Ordering::SeqCst);
            }
            y.load(Ordering::Relaxed)
        })
    };
    y.store(1, Ordering::Relaxed);
    if fenced {
        fence(Ordering::SeqCst);
    }
    let rx = x.load(Ordering::Relaxed);
    let ry = t.join().unwrap();
    (rx, ry)
}

/// The TSO mode must be *stronger than SC exploration* exactly where it
/// matters: the both-read-zero outcome of the SB litmus — the one a
/// removed Dekker fence admits on x86 — is unreachable under SC
/// exploration, reachable under `tso: true`, and sealed again by SeqCst
/// fences. The ordering-campaign suite's refutations rest on this.
#[test]
fn store_buffering_reachable_only_under_tso() {
    use std::collections::BTreeSet;
    use std::sync::Mutex;
    let run = |tso: bool, fenced: bool| {
        let seen: Arc<Mutex<BTreeSet<(u64, u64)>>> = Arc::new(Mutex::new(BTreeSet::new()));
        let sink = Arc::clone(&seen);
        let report = explore(
            Config {
                tso,
                ..Config::with_preemption_bound(2)
            },
            move || {
                let out = sb_round(fenced);
                sink.lock().unwrap().insert(out);
            },
        );
        assert!(report.complete, "SB space not exhausted: {report:?}");
        let outcomes = seen.lock().unwrap().clone();
        outcomes
    };
    let sc = run(false, false);
    assert!(
        !sc.contains(&(0, 0)),
        "SC exploration must not reach both-read-zero: {sc:?}"
    );
    let tso = run(true, false);
    assert!(
        tso.contains(&(0, 0)),
        "TSO exploration failed to reach both-read-zero: {tso:?}"
    );
    let tso_fenced = run(true, true);
    assert!(
        !tso_fenced.contains(&(0, 0)),
        "SeqCst fences must seal store buffering under TSO: {tso_fenced:?}"
    );
}

/// The fixed version of the same program must explore clean and complete.
#[test]
fn atomic_increment_is_clean() {
    let report = explore(Config::with_preemption_bound(2), || {
        let c = Arc::new(AtomicU64::new(0));
        let t = {
            let c = Arc::clone(&c);
            shim_sync::thread::spawn(move || {
                c.fetch_add(1, Ordering::SeqCst);
            })
        };
        c.fetch_add(1, Ordering::SeqCst);
        t.join().unwrap();
        assert_eq!(c.load(Ordering::SeqCst), 2);
    });
    assert!(report.complete, "space not exhausted: {report:?}");
}
