//! Bounded model checking of the adaptive-threshold handshake: the
//! owner's poll → acknowledge → retune loop racing a thief's
//! `record_steal_failure`, with the *product* `ThresholdController`
//! (`#[path]`-included from `crates/strategy`) supplying the retune
//! values. Exhaustive at 2 threads.
//!
//! The protocol under test is the one the runtime's `strategy_poll` /
//! `special_section` pair executes: the owner is the only writer of
//! `max_stolen_num` (a relaxed store), the thief reads it with a relaxed
//! load inside `record_steal_failure`. The properties:
//!
//! * **no lost raise** — if the thief crosses the (possibly stale)
//!   threshold and the owner never acknowledges, the flag is up at the
//!   end of every schedule;
//! * **single raising transition** — between acknowledgements at most
//!   one `record_steal_failure` call reports the lowered→raised edge,
//!   no matter how the retune store interleaves with the failure loads;
//! * **bounded threshold** — every value the owner publishes stays in
//!   `[lo, hi]` of the controller, so a thief can never observe a
//!   threshold of 0 (which would make the strict `>` unsatisfiable-free
//!   and fire `need_task` on the first failure forever).

use adaptivetc_check::controller::ThresholdController;
use adaptivetc_check::signal::NeedTask;
use adaptivetc_check::sync::{AtomicU32, Ordering};
use adaptivetc_check::{explore, Config};
use std::sync::Arc;

/// Owner acknowledges and retunes while a thief records three failures
/// against an initial threshold of 1: in every interleaving the flag's
/// raising edge is reported exactly once per acknowledgement window, and
/// a post-ack failure burst must re-raise against the *retuned* (higher)
/// threshold or not at all.
#[test]
fn ack_retune_vs_failure_burst() {
    let report = explore(Config::with_preemption_bound(2), || {
        let sig = Arc::new(NeedTask::new(1));
        let raises = Arc::new(AtomicU32::new(0));
        let thief = {
            let (sig, raises) = (Arc::clone(&sig), Arc::clone(&raises));
            shim_sync::thread::spawn(move || {
                for _ in 0..3 {
                    if sig.record_steal_failure() {
                        raises.fetch_add(1, Ordering::Relaxed);
                    }
                }
            })
        };

        // The owner's side of the runtime's special_section: poll, and on
        // a raised flag acknowledge + back the threshold off through the
        // product controller.
        let mut ctl = ThresholdController::new(1);
        let mut acks = 0u32;
        for _ in 0..4 {
            if sig.needs_task() {
                sig.acknowledge();
                acks += 1;
                if let Some(t) = ctl.on_ack() {
                    assert!(
                        t >= ctl.lo() && t <= ctl.hi(),
                        "published threshold {t} escaped [{}, {}]",
                        ctl.lo(),
                        ctl.hi()
                    );
                    assert!(t >= 1, "a zero threshold would always re-fire");
                    sig.set_threshold(t);
                }
            }
        }
        thief.join().unwrap();

        let raised = raises.load(Ordering::Relaxed);
        // One raising edge per acknowledgement window: the swap in
        // record_steal_failure gives the edge to exactly one failure, and
        // only an acknowledge can re-arm it.
        assert!(
            raised <= acks + 1,
            "{raised} raising edges across {acks} acknowledgements"
        );
        if acks == 0 {
            // No lost raise: 3 failures strictly exceed every threshold
            // the un-retuned signal can hold (1), so with no acknowledge
            // the flag must be up and the edge reported exactly once.
            assert!(sig.needs_task(), "threshold crossed but need_task lost");
            assert_eq!(raised, 1, "unacknowledged window reported {raised} edges");
        }
        // The owner is the only writer: whatever the interleaving, the
        // final threshold is one the controller published (or the base).
        let t = sig.max_stolen_num();
        assert!(
            t == 1 || (t >= ctl.lo() && t <= ctl.hi()),
            "final threshold {t} was never published"
        );
    });
    assert!(report.complete, "handshake space not exhausted: {report:?}");
    println!("strategy_handshake::ack_retune_vs_failure_burst: {report:?}");
}

/// A retune racing a failure can shift *when* the flag rises but never
/// loses the rise: with the threshold raised from 1 to 2 concurrently
/// with three failures, every schedule ends raised (3 > 2 > 1) even if
/// the thief read either value.
#[test]
fn retune_never_loses_the_rise() {
    let report = explore(Config::with_preemption_bound(2), || {
        let sig = Arc::new(NeedTask::new(1));
        let thief = {
            let sig = Arc::clone(&sig);
            shim_sync::thread::spawn(move || {
                sig.record_steal_failure();
                sig.record_steal_failure();
                sig.record_steal_failure();
            })
        };
        // Owner retunes mid-burst without acknowledging (no poll saw the
        // flag yet): the store races all three threshold loads.
        let mut ctl = ThresholdController::new(1);
        let t = ctl.on_ack().expect("first back-off moves 1 -> 2");
        sig.set_threshold(t);
        thief.join().unwrap();
        assert!(
            sig.needs_task(),
            "three failures exceed both the old (1) and new (2) threshold"
        );
        assert_eq!(sig.stolen_num(), 3);
    });
    assert!(report.complete, "space not exhausted: {report:?}");
}

/// Sustained quiet decays the controller below its base, and the decayed
/// floor it publishes still keeps the strict threshold satisfiable: the
/// single-failure no-false-positive guarantee survives retuning to `lo`.
#[test]
fn decayed_floor_keeps_strict_threshold() {
    let report = explore(Config::with_preemption_bound(2), || {
        // The decay walk itself is pure owner-local state — run it to the
        // floor outside any race, then race the published floor.
        let mut ctl = ThresholdController::new(2);
        let mut floor = ctl.current();
        loop {
            match ctl.on_quiet_poll() {
                Some(t) => floor = t,
                None if ctl.current() <= ctl.lo() => break,
                None => {}
            }
        }
        assert_eq!(floor, 1, "base 2 decays to lo = 1");

        let sig = Arc::new(NeedTask::new(2));
        sig.set_threshold(floor);
        let thief = {
            let sig = Arc::clone(&sig);
            shim_sync::thread::spawn(move || sig.record_steal_failure())
        };
        let polled = sig.needs_task();
        let raised = thief.join().unwrap();
        assert!(
            !raised && !polled && !sig.needs_task(),
            "one failure must not exceed the strict floor of 1"
        );
    });
    assert!(report.complete, "space not exhausted: {report:?}");
}
