//! Exhaustive bounded model checking of the THE deque: push/pop/steal
//! linearizability against the reference model, and the special-task
//! extension (`pop_specialtask` / `steal_specialtask`) under an owner vs
//! thief race. Two threads, preemption bound 2, every schedule explored.

use adaptivetc_check::the::{PopSpecial, StealOutcome, TheDeque};
use adaptivetc_check::{explore, linearizable, Config, OwnerOp};
use std::collections::BTreeSet;
use std::sync::{Arc, Mutex};

/// Outcome of one interleaving: (owner pop, pop_special says ChildStolen,
/// thief steal result).
type Outcome = (Option<u32>, bool, Option<u32>);

/// Owner interleaves pushes and pops with a concurrent thief stealing
/// twice; every interleaving's observations must linearize against the
/// sequential reference deque.
#[test]
fn push_pop_steal_linearizable() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        d.push(1).unwrap();
        d.push(2).unwrap();
        let thief = {
            let d = Arc::clone(&d);
            shim_sync::thread::spawn(move || {
                let mut got = Vec::new();
                for _ in 0..2 {
                    got.push(match d.steal() {
                        StealOutcome::Stolen(v) => Some(v),
                        StealOutcome::Empty => None,
                    });
                }
                got
            })
        };
        let mut owner = vec![OwnerOp::Push(1), OwnerOp::Push(2)];
        d.push(3).unwrap();
        owner.push(OwnerOp::Push(3));
        for _ in 0..3 {
            owner.push(OwnerOp::Pop(d.pop()));
        }
        let steals = thief.join().unwrap();
        assert!(
            linearizable(&owner, &steals),
            "history not linearizable: owner {owner:?}, steals {steals:?}"
        );
    });
    assert!(
        report.complete,
        "THE push/pop/steal space not exhausted: {report:?}"
    );
    println!("the_protocol::push_pop_steal_linearizable: {report:?}");
}

/// The special-task extension: a thief never steals the special entry
/// itself, the child is consumed exactly once, and `pop_special` reports
/// `ChildStolen` exactly when the thief took the child (THE resolves the
/// race precisely, under the lock).
#[test]
fn special_task_steal_resolution() {
    let outcomes: Arc<Mutex<BTreeSet<Outcome>>> = Arc::new(Mutex::new(BTreeSet::new()));
    let sink = Arc::clone(&outcomes);
    let report = explore(Config::with_preemption_bound(2), move || {
        let d = Arc::new(TheDeque::<u32>::new(8));
        d.push_special(10).unwrap();
        d.push(20).unwrap();
        let thief = {
            let d = Arc::clone(&d);
            shim_sync::thread::spawn(move || match d.steal() {
                StealOutcome::Stolen(v) => Some(v),
                StealOutcome::Empty => None,
            })
        };
        let popped = d.pop();
        let spec = d.pop_special();
        let stolen = thief.join().unwrap();
        // The special entry is never handed to a thief.
        assert_ne!(stolen, Some(10), "thief stole the special task itself");
        // The child is consumed exactly once, by someone.
        let owner_got = popped == Some(20);
        let thief_got = stolen == Some(20);
        assert!(
            owner_got ^ thief_got,
            "child consumed {} times (popped {popped:?}, stolen {stolen:?})",
            u8::from(owner_got) + u8::from(thief_got)
        );
        // THE's owner-side resolution is exact: ChildStolen iff the thief
        // actually took the child.
        let child_stolen = match spec {
            PopSpecial::Reclaimed(v) => {
                assert_eq!(v, 10, "reclaimed a different special");
                false
            }
            PopSpecial::ChildStolen => true,
        };
        assert_eq!(
            child_stolen, thief_got,
            "pop_special said ChildStolen={child_stolen} but thief_got={thief_got}"
        );
        sink.lock().unwrap().insert((popped, child_stolen, stolen));
    });
    assert!(
        report.complete,
        "THE special-task space not exhausted: {report:?}"
    );
    let seen = outcomes.lock().unwrap().clone();
    // Both resolutions of the race must actually be reachable.
    assert!(
        seen.contains(&(Some(20), false, None)),
        "never saw the owner keep the child: {seen:?}"
    );
    assert!(
        seen.contains(&(None, true, Some(20))),
        "never saw the thief win the child: {seen:?}"
    );
    println!("the_protocol::special_task_steal_resolution: {report:?}, outcomes {seen:?}");
}
