//! Bounded model checking of the fence-free multiplicity deque.
//!
//! The deque alone guarantees only *at-least-once* extraction; the
//! properties checked here are therefore stated through an emulated claim
//! layer (one `swap(true)` per value, standing in for the runtime's epoch
//! CAS on the frame — see `engine::FfEntry`): across every interleaving of
//! an owner and a thief, each pushed value is *claimed exactly once*, the
//! special entry is never handed to a thief, and `ChildStolen` is reported
//! whenever the thief's claim of the child won. Two threads, preemption
//! bound 2, every schedule explored; plus a pinned replayable schedule
//! exhibiting the benign duplicate extraction the claim layer exists for.

use adaptivetc_check::fence_free::FenceFreeDeque;
use adaptivetc_check::sync::{AtomicBool, Ordering};
use adaptivetc_check::the::{PopSpecial, StealOutcome};
use adaptivetc_check::{current_trail, explore, replay, Config};
use std::sync::{Arc, Mutex};

/// Claim table: slot `v` is taken by the first extractor to swap it true.
/// `AcqRel` mirrors the runtime's claim CAS ordering.
fn claim(claims: &[AtomicBool], v: u32) -> bool {
    !claims[v as usize].swap(true, Ordering::AcqRel)
}

/// Owner pushes, pops and drains; a concurrent thief steals. Multiplicity
/// means raw extractions may overlap, but the claim layer must see every
/// value claimed exactly once — by someone — in every interleaving.
#[test]
fn every_value_claimed_exactly_once_under_the_claim_layer() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(FenceFreeDeque::<u32>::with_capacity(8));
        let claims: Arc<[AtomicBool; 3]> =
            Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
        d.push(1);
        d.push(2);
        let thief = {
            let d = Arc::clone(&d);
            let claims = Arc::clone(&claims);
            shim_sync::thread::spawn(move || {
                let mut claimed = 0u32;
                for _ in 0..2 {
                    if let StealOutcome::Stolen(v) = d.steal() {
                        if claim(&*claims, v) {
                            claimed += 1;
                        }
                    }
                }
                claimed
            })
        };
        let mut claimed = 0u32;
        // The owner drains: multiplicity may re-offer entries the thief's
        // cursor passed, so pop-until-None visits every pushed value.
        while let Some(v) = d.pop() {
            if claim(&*claims, v) {
                claimed += 1;
            }
        }
        claimed += thief.join().unwrap();
        assert!(
            claims[1].load(Ordering::Relaxed) && claims[2].load(Ordering::Relaxed),
            "a pushed value was never extracted (lost work)"
        );
        assert_eq!(claimed, 2, "a value was claimed twice (claim layer broken)");
    });
    assert!(
        report.complete,
        "fence-free conservation space not exhausted: {report:?}"
    );
    println!("fence_free_model::every_value_claimed_exactly_once: {report:?}");
}

/// The special-task extension under a concurrent thief: the special entry
/// never reaches the thief, the child is claimed exactly once, and when
/// the thief's claim wins the owner's `pop_special` must say
/// `ChildStolen` (the thief's cursor CAS precedes its claim, so a lost
/// owner claim implies the cursor already passed the pair).
#[test]
fn special_pair_race_resolves_safely() {
    let report = explore(Config::with_preemption_bound(2), || {
        let d = Arc::new(FenceFreeDeque::<u32>::with_capacity(8));
        let claims: Arc<[AtomicBool; 8]> =
            Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
        d.push_special(6);
        d.push(7);
        let thief = {
            let d = Arc::clone(&d);
            let claims = Arc::clone(&claims);
            shim_sync::thread::spawn(move || match d.steal() {
                StealOutcome::Stolen(v) => {
                    assert_ne!(v, 6, "thief stole the special task itself");
                    claim(&*claims, v)
                }
                StealOutcome::Empty => false,
            })
        };
        // Engine order: pop (and claim) the child, then pop_special.
        let owner_got = match d.pop() {
            Some(v) => {
                assert_eq!(v, 7, "owner popped something it never pushed");
                claim(&*claims, v)
            }
            None => false,
        };
        let spec = d.pop_special();
        let thief_got = thief.join().unwrap();
        assert!(
            owner_got ^ thief_got,
            "child claimed {} times",
            u8::from(owner_got) + u8::from(thief_got)
        );
        if thief_got {
            // The thief's cursor CAS (h -> h+2) happens before its claim;
            // the owner's failed claim therefore observes the advanced
            // cursor and pop_special must not hand the special back as if
            // nothing happened.
            assert!(
                matches!(spec, PopSpecial::ChildStolen),
                "thief claimed the child but pop_special said Reclaimed"
            );
        } else {
            // The owner claimed first. The deque may still conservatively
            // report ChildStolen (the thief's cursor can pass the pair
            // without winning the claim); what it must never do is
            // reclaim a *different* special.
            if let PopSpecial::Reclaimed(v) = spec {
                assert_eq!(v, 6, "reclaimed a different special");
            }
        }
    });
    assert!(
        report.complete,
        "fence-free special space not exhausted: {report:?}"
    );
    println!("fence_free_model::special_pair_race_resolves_safely: {report:?}");
}

/// One round of the owner/thief claim race over a single entry.
/// Returns true when the *owner's* claim lost — the benign duplicate
/// extraction (`RunStats::dup_extractions`) multiplicity permits.
fn duplicate_round() -> bool {
    let d = Arc::new(FenceFreeDeque::<u32>::with_capacity(8));
    let claims: Arc<[AtomicBool; 2]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
    d.push(1);
    let thief = {
        let d = Arc::clone(&d);
        let claims = Arc::clone(&claims);
        shim_sync::thread::spawn(move || match d.steal() {
            StealOutcome::Stolen(v) => claim(&*claims, v),
            StealOutcome::Empty => false,
        })
    };
    // Multiplicity: the owner's pop still offers the entry the thief's
    // cursor passed; the claim decides who actually runs it.
    let owner_got = match d.pop() {
        Some(v) => claim(&*claims, v),
        None => false,
    };
    let thief_got = thief.join().unwrap();
    assert!(owner_got ^ thief_got, "claim layer failed to arbitrate");
    !owner_got
}

/// A duplicate extraction is reachable, benign, and *replayable*: the
/// first schedule that exhibits it is pinned and re-run deterministically.
#[test]
fn benign_duplicate_extraction_pinned_and_replayed() {
    let pinned: Arc<Mutex<Option<Vec<usize>>>> = Arc::new(Mutex::new(None));
    let sink = Arc::clone(&pinned);
    let report = explore(Config::with_preemption_bound(2), move || {
        if duplicate_round() {
            let mut g = sink.lock().unwrap();
            if g.is_none() {
                *g = current_trail();
            }
        }
    });
    assert!(report.complete, "duplicate space not exhausted: {report:?}");
    let trail = pinned
        .lock()
        .unwrap()
        .clone()
        .expect("a schedule where the owner's claim loses must be reachable");
    replay(&trail, move || {
        assert!(
            duplicate_round(),
            "pinned schedule no longer exhibits the duplicate extraction"
        );
    });
    println!(
        "fence_free_model::benign_duplicate pinned trail of {} decisions",
        trail.len()
    );
}
