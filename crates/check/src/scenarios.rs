//! The shared scenario registry: every bounded protocol workload the
//! race-detection lane and the ordering-minimization audit re-run.
//!
//! Each [`Scenario`] is a self-contained closure body for [`explore`]:
//! it builds its structures inside the exploration (a TSO-mode
//! requirement), drives a two-thread protocol race, and asserts the
//! protocol's safety properties — the same assertions double as the
//! refutation oracle when the audit re-runs a scenario with a weakened
//! memory ordering. The `covers` list ties a scenario to the
//! `#[path]`-included product sources whose `Ordering::` sites it
//! exercises; `adaptivetc-lint`'s `verdicts::COVERED_FILES` is the
//! union of these lists, and `tests/race_detector.rs` re-explores every
//! scenario with `check_races` in both SC and TSO modes.
//!
//! Bodies are deliberately smaller than the dedicated suites in
//! `tests/` (race checking folds the happens-before state into the
//! state hash, so pruning is weaker): the suites prove depth, this
//! registry proves breadth per covered file.

use crate::chase_lev::{ChaseLevDeque, ClSteal};
use crate::controller::ThresholdController;
use crate::fence_free::FenceFreeDeque;
use crate::pool::PoolDeque;
use crate::signal::NeedTask;
use crate::submit::{
    CancelOutcome, CancelToken, JobLifecycle, JobStatus, PrioQueue, Priority, SubmitQueue,
};
use crate::sync::{AtomicBool, Ordering};
use crate::the::{PopSpecial, StealOutcome, TheDeque};
use crate::{linearizable, OwnerOp};
use std::sync::Arc;

/// One registered workload: a name for reports, the covered product
/// sources, and the exploration body.
pub struct Scenario {
    /// Stable name used in verdict reports and test output.
    pub name: &'static str,
    /// Workspace-relative product sources whose ordering sites this
    /// scenario exercises.
    pub covers: &'static [&'static str],
    /// The body to hand to [`explore`](crate::explore).
    pub run: fn(),
}

const THE: &str = "crates/deque/src/the.rs";
const CHASE_LEV: &str = "crates/deque/src/chase_lev.rs";
const FENCE_FREE: &str = "crates/deque/src/fence_free.rs";
const POOL: &str = "crates/deque/src/pool.rs";
const SIGNAL: &str = "crates/deque/src/signal.rs";
const SUBMIT: &str = "crates/runtime/src/submit.rs";
const CONTROLLER: &str = "crates/strategy/src/controller.rs";

/// Every registered scenario. `tests/race_detector.rs` explores each
/// with race checking on; the `ordering_audit` binary re-runs the ones
/// covering a site's file under weakened-ordering overrides.
pub const SCENARIOS: &[Scenario] = &[
    Scenario {
        name: "the_linearizable",
        covers: &[THE],
        run: the_linearizable,
    },
    Scenario {
        name: "the_special",
        covers: &[THE],
        run: the_special,
    },
    Scenario {
        name: "the_wraparound",
        covers: &[THE],
        run: the_wraparound,
    },
    Scenario {
        name: "chase_lev_steal",
        covers: &[CHASE_LEV, THE],
        run: chase_lev_steal,
    },
    Scenario {
        name: "chase_lev_grow",
        covers: &[CHASE_LEV],
        run: chase_lev_grow,
    },
    Scenario {
        name: "chase_lev_special",
        covers: &[CHASE_LEV, THE],
        run: chase_lev_special,
    },
    Scenario {
        name: "fence_free_claims",
        covers: &[FENCE_FREE, THE],
        run: fence_free_claims,
    },
    Scenario {
        name: "fence_free_special",
        covers: &[FENCE_FREE, THE],
        run: fence_free_special,
    },
    Scenario {
        name: "pool_locked",
        covers: &[POOL, THE],
        run: pool_locked,
    },
    Scenario {
        name: "signal_delivery",
        covers: &[SIGNAL],
        run: signal_delivery,
    },
    Scenario {
        name: "strategy_retune",
        covers: &[SIGNAL, CONTROLLER],
        run: strategy_retune,
    },
    Scenario {
        name: "submit_claim",
        covers: &[SUBMIT],
        run: submit_claim,
    },
    Scenario {
        name: "submit_cancel",
        covers: &[SUBMIT],
        run: submit_cancel,
    },
    Scenario {
        name: "submit_prio",
        covers: &[SUBMIT],
        run: submit_prio,
    },
];

/// The scenarios exercising `file` (a workspace-relative source path).
pub fn covering(file: &str) -> impl Iterator<Item = &'static Scenario> {
    let file = file.to_string();
    SCENARIOS
        .iter()
        .filter(move |s| s.covers.contains(&file.as_str()))
}

// ---------------------------------------------------------------------------
// THE deque
// ---------------------------------------------------------------------------

fn the_linearizable() {
    let d = Arc::new(TheDeque::<u32>::new(8));
    d.push(1).unwrap();
    d.push(2).unwrap();
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || {
            let mut got = Vec::new();
            for _ in 0..2 {
                got.push(match d.steal() {
                    StealOutcome::Stolen(v) => Some(v),
                    StealOutcome::Empty => None,
                });
            }
            got
        })
    };
    let mut owner = vec![OwnerOp::Push(1), OwnerOp::Push(2)];
    for _ in 0..2 {
        owner.push(OwnerOp::Pop(d.pop()));
    }
    let steals = thief.join().unwrap();
    assert!(
        linearizable(&owner, &steals),
        "history not linearizable: owner {owner:?}, steals {steals:?}"
    );
}

fn the_special() {
    let d = Arc::new(TheDeque::<u32>::new(8));
    d.push_special(10).unwrap();
    d.push(20).unwrap();
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || match d.steal() {
            StealOutcome::Stolen(v) => Some(v),
            StealOutcome::Empty => None,
        })
    };
    let popped = d.pop();
    let spec = d.pop_special();
    let stolen = thief.join().unwrap();
    assert_ne!(stolen, Some(10), "thief stole the special task itself");
    let owner_got = popped == Some(20);
    let thief_got = stolen == Some(20);
    assert!(owner_got ^ thief_got, "child consumed zero or two times");
    let child_stolen = matches!(spec, PopSpecial::ChildStolen);
    assert_eq!(child_stolen, thief_got, "pop_special misreported the race");
}

/// Slot recycling at capacity 2: the owner's overflow check reads the
/// completion cursor `cleaned` concurrently with the thief's Release
/// store of it — the exact edge the cursor exists to provide.
fn the_wraparound() {
    let d = Arc::new(TheDeque::<u32>::new(2));
    d.push(1).unwrap();
    d.push(2).unwrap();
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || match d.steal() {
            StealOutcome::Stolen(v) => Some(v),
            StealOutcome::Empty => None,
        })
    };
    // Racing the steal: admitted exactly when a recycled slot is proven
    // clean, rejected otherwise — both are legal, and the HB engine
    // verifies the admitted case reuses the slot race-free.
    let third_ok = d.push(3).is_ok();
    let mut popped = Vec::new();
    while let Some(v) = d.pop() {
        popped.push(v);
    }
    let stolen = thief.join().unwrap();
    let mut all: Vec<u32> = popped;
    all.extend(stolen);
    all.sort_unstable();
    let mut expect = vec![1, 2];
    if third_ok {
        expect.push(3);
    }
    assert_eq!(all, expect, "value lost or duplicated across the wrap");
    // Quiescent accessor sweep: exercises the observer-side orderings
    // (len / Debug) so the audit has an exercise signal for them.
    assert_eq!(d.len(), 0);
    assert!(d.is_empty());
    let _ = format!("{d:?}");
}

// ---------------------------------------------------------------------------
// Chase-Lev deque
// ---------------------------------------------------------------------------

fn cl_steal_to_completion(d: &ChaseLevDeque<u32>) -> Option<u32> {
    loop {
        match d.steal() {
            ClSteal::Stolen(v) => return Some(v),
            ClSteal::Empty => return None,
            ClSteal::Retry => continue,
        }
    }
}

/// Three pushes race one thief, then the owner drains; exercises push,
/// pop and steal (growth is `chase_lev_grow`'s job — `with_capacity`
/// rounds up to the minimum 16, so these pushes never grow).
fn chase_lev_steal() {
    let d = Arc::new(ChaseLevDeque::<u32>::with_capacity(2));
    d.push(1);
    d.push(2);
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || cl_steal_to_completion(&d))
    };
    d.push(3);
    let mut owner = vec![OwnerOp::Push(1), OwnerOp::Push(2), OwnerOp::Push(3)];
    for _ in 0..3 {
        owner.push(OwnerOp::Pop(d.pop()));
    }
    let steals = vec![thief.join().unwrap()];
    assert!(
        linearizable(&owner, &steals),
        "history not linearizable: owner {owner:?}, steals {steals:?}"
    );
    // Quiescent accessor sweep for the audit's exercise signal.
    assert!(d.is_empty());
    assert_eq!(d.capacity(), 16, "rounded-up minimum capacity");
    let _ = format!("{d:?}");
}

/// Force a buffer grow while a steal may be in flight. The minimum
/// capacity (16) is pre-filled before the thief spawns; the thief
/// claims at most one entry, so the second racing push always sees
/// `bottom - top >= 16` and must grow. The conservation check over all
/// 18 entries — plus the race detector watching the thief's plain slot
/// reads against the owner's copy into the new buffer — is the
/// refutation oracle for `grow`'s Release publish.
fn chase_lev_grow() {
    let d = Arc::new(ChaseLevDeque::<u32>::with_capacity(2));
    for i in 0..16 {
        d.push(i);
    }
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || cl_steal_to_completion(&d))
    };
    d.push(16);
    d.push(17);
    assert!(d.capacity() >= 32, "a grow must have happened");
    let mut seen = Vec::new();
    seen.extend(thief.join().unwrap());
    while let Some(v) = d.pop() {
        seen.push(v);
    }
    seen.sort_unstable();
    assert_eq!(
        seen,
        (0..18).collect::<Vec<u32>>(),
        "grow lost or duplicated an entry"
    );
}

fn chase_lev_special() {
    let d = Arc::new(ChaseLevDeque::<u32>::with_capacity(16));
    d.push_special(10);
    d.push(20);
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || cl_steal_to_completion(&d))
    };
    let popped = d.pop();
    let spec = d.pop_special();
    let stolen = thief.join().unwrap();
    assert_ne!(stolen, Some(10), "thief stole the special task itself");
    let owner_got = popped == Some(20);
    let thief_got = stolen == Some(20);
    assert!(owner_got ^ thief_got, "child consumed zero or two times");
    // Chase-Lev's resolution is conservative: ChildStolen whenever the
    // thief MAY have the child, so only the converse direction holds.
    if thief_got {
        assert!(
            matches!(spec, PopSpecial::ChildStolen),
            "thief took the child but pop_special said Reclaimed"
        );
    }
}

// ---------------------------------------------------------------------------
// Fence-free multiplicity deque
// ---------------------------------------------------------------------------

fn ff_claim(claims: &[AtomicBool], v: u32) -> bool {
    !claims[v as usize].swap(true, Ordering::AcqRel)
}

fn fence_free_claims() {
    let d = Arc::new(FenceFreeDeque::<u32>::with_capacity(8));
    let claims: Arc<[AtomicBool; 3]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
    d.push(1);
    d.push(2);
    let thief = {
        let d = Arc::clone(&d);
        let claims = Arc::clone(&claims);
        shim_sync::thread::spawn(move || {
            let mut claimed = 0u32;
            for _ in 0..2 {
                if let StealOutcome::Stolen(v) = d.steal() {
                    if ff_claim(&*claims, v) {
                        claimed += 1;
                    }
                }
            }
            claimed
        })
    };
    let mut claimed = 0u32;
    while let Some(v) = d.pop() {
        if ff_claim(&*claims, v) {
            claimed += 1;
        }
    }
    claimed += thief.join().unwrap();
    assert!(
        claims[1].load(Ordering::Relaxed) && claims[2].load(Ordering::Relaxed),
        "a pushed value was never extracted (lost work)"
    );
    assert_eq!(claimed, 2, "a value was claimed twice (claim layer broken)");
    // Quiescent accessor sweep for the audit's exercise signal.
    let _ = d.len();
    let _ = d.is_empty();
    let _ = format!("{d:?}");
}

fn fence_free_special() {
    let d = Arc::new(FenceFreeDeque::<u32>::with_capacity(8));
    let claims: Arc<[AtomicBool; 3]> = Arc::new(std::array::from_fn(|_| AtomicBool::new(false)));
    d.push_special(1);
    d.push(2);
    let thief = {
        let d = Arc::clone(&d);
        let claims = Arc::clone(&claims);
        shim_sync::thread::spawn(move || match d.steal() {
            StealOutcome::Stolen(v) => {
                assert_ne!(v, 1, "thief stole the special task itself");
                ff_claim(&*claims, v)
            }
            StealOutcome::Empty => false,
        })
    };
    // Engine order (LIFO discipline): pop and claim the special's child
    // first, then pop_special.
    let owner_got = match d.pop() {
        Some(v) => {
            assert_eq!(v, 2, "owner popped something it never pushed");
            ff_claim(&*claims, v)
        }
        None => false,
    };
    let spec = d.pop_special();
    let thief_got = thief.join().unwrap();
    assert!(
        owner_got ^ thief_got,
        "child claimed {} times",
        u8::from(owner_got) + u8::from(thief_got)
    );
    if thief_got {
        assert!(
            matches!(spec, PopSpecial::ChildStolen),
            "thief claimed the child but pop_special said Reclaimed"
        );
    } else if let PopSpecial::Reclaimed(v) = spec {
        assert_eq!(v, 1, "reclaimed a different special");
    }
}

// ---------------------------------------------------------------------------
// Locked pool deque (mutex-only backend)
// ---------------------------------------------------------------------------

fn pool_locked() {
    let d = Arc::new(PoolDeque::<u32>::new());
    d.push(1);
    d.push_special(10);
    let thief = {
        let d = Arc::clone(&d);
        shim_sync::thread::spawn(move || match d.steal() {
            StealOutcome::Stolen(v) => Some(v),
            StealOutcome::Empty => None,
        })
    };
    let spec = d.pop_special();
    let popped = d.pop();
    let stolen = thief.join().unwrap();
    assert_ne!(stolen, Some(10), "thief stole the special task itself");
    let mut got: Vec<u32> = [popped, stolen].into_iter().flatten().collect();
    if let PopSpecial::Reclaimed(v) = spec {
        got.push(v);
    }
    got.sort_unstable();
    assert!(
        got == vec![1, 10] || got == vec![1],
        "pool lost or duplicated a value: {got:?}"
    );
    // Deliberately cross-checks the two accessors against each other.
    #[allow(clippy::len_zero)]
    let consistent = d.is_empty() == (d.len() == 0);
    assert!(consistent, "len/is_empty disagree");
}

// ---------------------------------------------------------------------------
// need_task signal + strategy handshake
// ---------------------------------------------------------------------------

fn signal_delivery() {
    let sig = Arc::new(NeedTask::new(1));
    let thief = {
        let sig = Arc::clone(&sig);
        shim_sync::thread::spawn(move || {
            sig.record_steal_failure();
            sig.record_steal_failure();
        })
    };
    let mut acknowledged = false;
    for _ in 0..3 {
        if sig.needs_task() {
            sig.acknowledge();
            assert!(!sig.needs_task(), "acknowledge did not clear need_task");
            assert_eq!(sig.stolen_num(), 0, "acknowledge did not reset stolen_num");
            acknowledged = true;
            break;
        }
    }
    thief.join().unwrap();
    if !acknowledged {
        assert!(
            sig.needs_task(),
            "two failures past the threshold never raised need_task"
        );
    }
    assert!(sig.stolen_num() <= 2, "stolen_num overshot the failures");
    // A successful steal withdraws the signal (quiescent here; the
    // concurrent variant lives in the dedicated suite).
    sig.record_steal_success();
    assert!(!sig.needs_task(), "success must clear need_task");
    assert_eq!(sig.stolen_num(), 0, "success must reset stolen_num");
}

fn strategy_retune() {
    let sig = Arc::new(NeedTask::new(1));
    let thief = {
        let sig = Arc::clone(&sig);
        shim_sync::thread::spawn(move || {
            sig.record_steal_failure();
            sig.record_steal_failure();
            sig.record_steal_failure();
        })
    };
    // Owner retunes mid-burst without acknowledging: the store races all
    // three threshold loads, but three failures exceed both 1 and 2.
    let mut ctl = ThresholdController::new(1);
    let t = ctl.on_ack().expect("first back-off moves 1 -> 2");
    assert!(t >= ctl.lo() && t <= ctl.hi(), "threshold escaped bounds");
    sig.set_threshold(t);
    thief.join().unwrap();
    assert!(
        sig.needs_task(),
        "three failures exceed both the old and new threshold"
    );
    assert_eq!(sig.stolen_num(), 3);
}

// ---------------------------------------------------------------------------
// Job-server submission kernel
// ---------------------------------------------------------------------------

fn submit_claim() {
    let q = Arc::new(SubmitQueue::<u32>::with_capacity(2));
    let life = Arc::new(JobLifecycle::new());
    let t = {
        let (q, life) = (Arc::clone(&q), Arc::clone(&life));
        shim_sync::thread::spawn(move || {
            let pushed = q.try_push(1).is_ok();
            (pushed, life.claim())
        })
    };
    let main_ok = q.try_push(2).is_ok();
    let main_claimed = life.claim();
    let (thief_ok, thief_claimed) = t.join().unwrap();
    assert!(main_ok && thief_ok, "a two-slot ring dropped a submission");
    assert!(
        main_claimed ^ thief_claimed,
        "JobLifecycle::claim admitted {} claimers",
        u8::from(main_claimed) + u8::from(thief_claimed)
    );
    let mut drained = Vec::new();
    while let Some(v) = q.try_pop() {
        drained.push(v);
    }
    drained.sort_unstable();
    assert_eq!(drained, vec![1, 2], "submission lost or duplicated");
    assert_eq!(q.len(), 0, "drained ring reports occupancy");
}

fn submit_cancel() {
    let life = Arc::new(JobLifecycle::new());
    let token = Arc::new(CancelToken::new());
    let ran = Arc::new(AtomicBool::new(false));
    let worker = {
        let (life, token, ran) = (Arc::clone(&life), Arc::clone(&token), Arc::clone(&ran));
        shim_sync::thread::spawn(move || {
            if life.claim() {
                ran.store(true, Ordering::Relaxed);
                let cancelled = token.get();
                assert!(life.finish(cancelled), "lead finish must succeed");
            } else {
                assert_eq!(life.status(), JobStatus::Cancelled);
                assert!(!ran.load(Ordering::Relaxed), "cancelled job ran");
            }
        })
    };
    let outcome = life.cancel(&token);
    worker.join().unwrap();
    let status = life.status();
    assert!(status.is_terminal(), "job left non-terminal: {status:?}");
    match outcome {
        CancelOutcome::CancelledBeforeRun => {
            assert_eq!(status, JobStatus::Cancelled);
            assert!(!ran.load(Ordering::Relaxed));
        }
        CancelOutcome::Requested => assert!(ran.load(Ordering::Relaxed)),
        CancelOutcome::AlreadyTerminal => {
            assert_eq!(status, JobStatus::Completed);
            assert!(ran.load(Ordering::Relaxed));
        }
    }
    assert_eq!(life.cancel(&token), CancelOutcome::AlreadyTerminal);
}

fn submit_prio() {
    let q = Arc::new(PrioQueue::<u32>::with_capacity(2));
    let t = {
        let q = Arc::clone(&q);
        shim_sync::thread::spawn(move || q.try_push(Priority::High, 1).unwrap())
    };
    q.try_push(Priority::Low, 3).unwrap();
    t.join().unwrap();
    assert_eq!(q.try_pop(), Some((Priority::High, 1)));
    assert_eq!(q.try_pop(), Some((Priority::Low, 3)));
    assert_eq!(q.try_pop(), None);
}
