//! Bounded model checking for the deque protocols.
//!
//! This crate compiles the *same source files* as `adaptivetc-deque` —
//! `the.rs`, `chase_lev.rs` and `signal.rs` are `#[path]`-included below —
//! but resolves their `crate::sync` imports to the model primitives of
//! [`shim_sync`] instead of the real ones. Every atomic operation, fence
//! and mutex acquisition then becomes a yield point of a bounded schedule
//! explorer: [`explore`] re-executes a closure under every interleaving
//! reachable within a preemption bound (DFS with state-hash pruning) and
//! panics with a replayable schedule trace on the first violation.
//!
//! The suites live in `tests/`:
//!
//! * `the_protocol.rs` — push/pop/steal linearizability of the THE deque
//!   against the reference model, including the special-task extension;
//! * `chase_lev_special.rs` — the two-step CAS special-task steal
//!   (owner-pop vs thief race and its conservative resolution), plus the
//!   pinned-schedule regression replay;
//! * `signal_delivery.rs` — `need_task` delivery and acknowledgement;
//! * `fsm_transition.rs` — the fast→check→fast_2 walk of a miniature
//!   worker (driven by `adaptivetc_runtime::fsm`) under a concurrent
//!   thief;
//! * `strategy_handshake.rs` — the adaptive-threshold handshake: the
//!   owner's poll → acknowledge → retune loop (driving the *product*
//!   `ThresholdController`, `#[path]`-included from `crates/strategy`)
//!   racing a thief's `record_steal_failure`, exhaustive at 2 threads;
//! * `jobserver_submit.rs` — the job-server submission kernel
//!   (`runtime/src/submit.rs`, included below): no lost submission, no
//!   double claim, and the cancel-vs-complete race resolving to exactly
//!   one terminal state, exhaustive at 2 workers × 2 jobs, with a pinned
//!   replayable race-window schedule.
//!
//! Payloads in model-checked scenarios should be `Copy` integers: a
//! violation tears the execution down by unwinding every model thread, and
//! non-`Copy` payloads could then be dropped twice by the Chase-Lev deque's
//! speculative reads.

use std::error::Error;
use std::fmt;

/// Mirror of `adaptivetc_deque::Overflow` so the included sources resolve
/// `crate::Overflow` identically in both crates.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Overflow(pub usize);

impl fmt::Display for Overflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "deque overflowed its fixed capacity of {}", self.0)
    }
}

impl Error for Overflow {}

/// Model primitives; the included sources import these as `crate::sync`.
pub mod sync {
    pub use shim_sync::sync::*;
}

#[path = "../../deque/src/the.rs"]
pub mod the;

#[path = "../../deque/src/chase_lev.rs"]
pub mod chase_lev;

#[path = "../../deque/src/fence_free.rs"]
pub mod fence_free;

#[path = "../../deque/src/pool.rs"]
pub mod pool;

#[path = "../../deque/src/signal.rs"]
pub mod signal;

#[path = "../../runtime/src/submit.rs"]
pub mod submit;

// The online controllers are pure single-owner state (no `crate::sync`
// imports to remap) — included so the handshake model drives the same
// transition code the product runs.
#[path = "../../strategy/src/controller.rs"]
pub mod controller;

pub mod scenarios;

pub use shim_sync::{current_trail, explore, replay, replay_with, Config, Report};

/// A single-owner deque operation as observed in one execution, for the
/// linearizability oracle.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OwnerOp {
    /// `push(v)` succeeded.
    Push(u32),
    /// `pop()` observed this result.
    Pop(Option<u32>),
}

/// The reference model: an idealized sequential deque. Owner pushes and
/// pops at the back, thieves take from the front, one element at a time.
#[derive(Default)]
struct RefDeque {
    items: std::collections::VecDeque<u32>,
}

impl RefDeque {
    fn push(&mut self, v: u32) {
        self.items.push_back(v);
    }
    fn pop(&mut self) -> Option<u32> {
        self.items.pop_back()
    }
    fn steal(&mut self) -> Option<u32> {
        self.items.pop_front()
    }
}

/// Check that one concurrent execution is linearizable against the
/// reference deque: the owner's operations already have a total order
/// (they ran on one thread), so it suffices to find positions for the
/// thief's steal observations among them such that the reference model
/// reproduces every observed result exactly. Steal results are in thief
/// order; `None` means the steal observed an empty/unavailable deque.
pub fn linearizable(owner: &[OwnerOp], steals: &[Option<u32>]) -> bool {
    fn go(m: &mut RefDeque, owner: &[OwnerOp], steals: &[Option<u32>]) -> bool {
        if owner.is_empty() && steals.is_empty() {
            return true;
        }
        // Option 1: linearize the next steal here.
        if let Some(&s) = steals.first() {
            let saved = m.items.clone();
            if m.steal() == s && go(m, owner, &steals[1..]) {
                return true;
            }
            m.items = saved;
        }
        // Option 2: run the next owner op here.
        if let Some(&op) = owner.first() {
            let saved = m.items.clone();
            let ok = match op {
                OwnerOp::Push(v) => {
                    m.push(v);
                    true
                }
                OwnerOp::Pop(expect) => m.pop() == expect,
            };
            if ok && go(m, &owner[1..], steals) {
                return true;
            }
            m.items = saved;
        }
        false
    }
    go(&mut RefDeque::default(), owner, steals)
}

#[cfg(test)]
mod oracle_tests {
    use super::*;

    #[test]
    fn sequential_histories_linearize() {
        assert!(linearizable(
            &[
                OwnerOp::Push(1),
                OwnerOp::Push(2),
                OwnerOp::Pop(Some(2)),
                OwnerOp::Pop(Some(1)),
                OwnerOp::Pop(None),
            ],
            &[]
        ));
    }

    #[test]
    fn steal_takes_oldest() {
        // Owner pushes 1,2 and pops 2; the thief's steal of 1 linearizes.
        assert!(linearizable(
            &[OwnerOp::Push(1), OwnerOp::Push(2), OwnerOp::Pop(Some(2))],
            &[Some(1)]
        ));
        // A steal of the newest element cannot linearize while 1 is present.
        assert!(!linearizable(
            &[OwnerOp::Push(1), OwnerOp::Push(2), OwnerOp::Pop(Some(1))],
            &[Some(2)]
        ));
    }

    #[test]
    fn duplicated_delivery_is_rejected() {
        assert!(!linearizable(
            &[OwnerOp::Push(1), OwnerOp::Pop(Some(1))],
            &[Some(1)]
        ));
    }

    #[test]
    fn lost_value_is_rejected() {
        assert!(!linearizable(
            &[OwnerOp::Push(1), OwnerOp::Pop(None)],
            &[None]
        ));
    }
}
