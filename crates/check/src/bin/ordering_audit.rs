//! The ordering-minimization audit (DESIGN.md §16).
//!
//! For every `Ordering::` site group in the lint's covered files
//! (`adaptivetc_lint::verdicts::COVERED_FILES`), this binary:
//!
//! 1. runs the covering scenarios once with an *identity* override rule
//!    to count how often the site actually executes (`exercised`);
//! 2. re-runs them with each kind-aware one-step-weaker candidate
//!    (`SeqCst → Acquire/Release/AcqRel`, `AcqRel → Acquire|Release`,
//!    `Acquire/Release → Relaxed`) substituted at the site, under both
//!    sequential consistency and the x86-TSO store-buffer model, with
//!    happens-before race checking on — so a weakening is refuted either
//!    by a protocol assertion or by a data race on a plain access;
//! 3. writes one machine-readable `[[verdict]]` per group to
//!    `ORDERING_VERDICTS.toml` (`required` / `weakenable` / `minimal` /
//!    `unexercised`), which `adaptivetc-lint -- --orderings-verify`
//!    cross-checks against the tree on every CI run.
//!
//! Budgets: each exploration is bounded (preemption bound 2, schedule
//! and wall caps below, both overridable with `SHIM_SYNC_MAX_SCHEDULES`
//! / `SHIM_SYNC_MAX_WALL_SECS`), so verdicts are statements about the
//! explored bounds, not unbounded proofs — `required` refutations are
//! definitive, `weakenable` survivals are evidence.

use adaptivetc_check::scenarios::{covering, Scenario};
use adaptivetc_check::sync::Ordering;
use adaptivetc_check::Config;
use adaptivetc_lint::manifest::SiteKey;
use adaptivetc_lint::verdicts::{self, VerdictEntry};
use shim_sync::{OpKind, OverrideRule, OverrideSet};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::Path;
use std::process::ExitCode;
use std::sync::atomic::AtomicU64;
use std::sync::Arc;
use std::time::Duration;

/// Per-exploration schedule cap (env-overridable upward for a deeper
/// audit run); one group costs up to `1 + candidates × 2` explorations
/// per covering scenario.
const MAX_SCHEDULES: u64 = 20_000;
/// Per-exploration wall cap.
const MAX_WALL: Duration = Duration::from_secs(10);

fn parse_ordering(s: &str) -> Ordering {
    match s {
        "Relaxed" => Ordering::Relaxed,
        "Acquire" => Ordering::Acquire,
        "Release" => Ordering::Release,
        "AcqRel" => Ordering::AcqRel,
        "SeqCst" => Ordering::SeqCst,
        other => panic!("unknown ordering {other}"),
    }
}

fn ordering_name(o: Ordering) -> &'static str {
    match o {
        Ordering::Relaxed => "Relaxed",
        Ordering::Acquire => "Acquire",
        Ordering::Release => "Release",
        Ordering::AcqRel => "AcqRel",
        Ordering::SeqCst => "SeqCst",
        _ => "?",
    }
}

fn kind_name(k: Option<OpKind>) -> &'static str {
    match k {
        None => "any",
        Some(OpKind::Load) => "load",
        Some(OpKind::Store) => "store",
        Some(OpKind::Rmw) => "rmw",
        Some(OpKind::Fence) => "fence",
    }
}

/// The kind-aware one-step-down ladder for a declared ordering.
fn candidates(from: Ordering) -> Vec<(Option<OpKind>, Ordering)> {
    match from {
        Ordering::SeqCst => vec![
            (Some(OpKind::Load), Ordering::Acquire),
            (Some(OpKind::Store), Ordering::Release),
            (Some(OpKind::Rmw), Ordering::AcqRel),
            (Some(OpKind::Fence), Ordering::AcqRel),
        ],
        Ordering::AcqRel => vec![
            (Some(OpKind::Rmw), Ordering::Acquire),
            (Some(OpKind::Rmw), Ordering::Release),
            (Some(OpKind::Fence), Ordering::Acquire),
            (Some(OpKind::Fence), Ordering::Release),
        ],
        Ordering::Acquire | Ordering::Release => vec![(None, Ordering::Relaxed)],
        _ => Vec::new(),
    }
}

fn rule(key: &SiteKey, lines: &[u32], kind: Option<OpKind>, to: Ordering) -> Arc<OverrideSet> {
    Arc::new(OverrideSet {
        rules: vec![OverrideRule {
            file_suffix: key.file.clone(),
            lines: lines.to_vec(),
            from: parse_ordering(&key.ordering),
            to,
            kind,
            hits: AtomicU64::new(0),
        }],
    })
}

fn config(tso: bool, overrides: &Arc<OverrideSet>) -> Config {
    Config {
        tso,
        check_races: true,
        max_schedules: MAX_SCHEDULES,
        max_wall: MAX_WALL,
        overrides: Some(Arc::clone(overrides)),
        ..Config::with_preemption_bound(2)
    }
}

/// Run one scenario under `cfg`; `Ok(())` means no violation.
fn run(cfg: Config, s: &Scenario) -> Result<(), String> {
    catch_unwind(AssertUnwindSafe(|| adaptivetc_check::explore(cfg, s.run)))
        .map(drop)
        .map_err(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_else(|| "non-string panic".to_string())
        })
}

fn audit_group(key: &SiteKey, lines: &[u32]) -> VerdictEntry {
    let scenarios: Vec<&Scenario> = covering(&key.file).collect();
    let suites = scenarios
        .iter()
        .map(|s| s.name)
        .collect::<Vec<_>>()
        .join(",");
    let from = parse_ordering(&key.ordering);

    // Baseline: identity override counts how often the site resolves.
    let identity = rule(key, lines, None, from);
    for s in &scenarios {
        if let Err(msg) = run(config(false, &identity), s) {
            // A baseline violation is a real protocol bug, not a verdict.
            panic!(
                "baseline violation in {} at {} `{}`:\n{msg}",
                s.name, key.file, key.symbol
            );
        }
    }
    let exercised = identity.rules[0]
        .hits
        .load(std::sync::atomic::Ordering::Relaxed);
    let verdict = |v: &str, detail: String| VerdictEntry {
        key: key.clone(),
        verdict: v.to_string(),
        exercised,
        suites: suites.clone(),
        detail,
        line: 0,
    };

    if exercised == 0 {
        return verdict(
            "unexercised",
            "site never resolved in any covering scenario".to_string(),
        );
    }
    let cands = candidates(from);
    if cands.is_empty() {
        return verdict(
            "minimal",
            "already Relaxed; nothing weaker to try".to_string(),
        );
    }

    let mut survived = Vec::new();
    for (kind, to) in cands {
        let mut fired = false;
        for tso in [false, true] {
            let set = rule(key, lines, kind, to);
            for s in &scenarios {
                if let Err(msg) = run(config(tso, &set), s) {
                    let first = msg.lines().next().unwrap_or("violation").to_string();
                    return verdict(
                        "required",
                        format!(
                            "{}:{} -> {} refuted in {} ({} mode): {first}",
                            kind_name(kind),
                            key.ordering,
                            ordering_name(to),
                            s.name,
                            if tso { "tso" } else { "sc" },
                        ),
                    );
                }
            }
            fired |= set.rules[0].hits.load(std::sync::atomic::Ordering::Relaxed) > 0;
        }
        if fired {
            survived.push(format!(
                "{}:{} -> {}",
                kind_name(kind),
                key.ordering,
                ordering_name(to)
            ));
        }
    }
    if survived.is_empty() {
        // Exercised at baseline, but no kind-filtered candidate matched:
        // treat as required so nobody weakens on no evidence.
        return verdict(
            "required",
            "no one-step candidate applicable to the ops observed".to_string(),
        );
    }
    verdict(
        "weakenable",
        format!(
            "survived bounded SC+TSO exploration with races checked: {}",
            survived.join("; ")
        ),
    )
}

fn main() -> ExitCode {
    let root = match std::env::current_dir()
        .ok()
        .and_then(|d| adaptivetc_lint::find_root(&d))
    {
        Some(r) => r,
        None => {
            eprintln!("could not locate the workspace root");
            return ExitCode::from(2);
        }
    };
    // Model threads unwind on every refuted candidate; silence the
    // default per-thread panic banner and report through the verdicts.
    std::panic::set_hook(Box::new(|_| {}));

    let files = match adaptivetc_lint::model::load_workspace(&root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("workspace walk failed: {e}");
            return ExitCode::from(2);
        }
    };
    let sites = verdicts::covered_sites(&files);
    eprintln!(
        "auditing {} site group(s) across {} covered file(s)",
        sites.len(),
        verdicts::COVERED_FILES.len()
    );

    let mut entries = Vec::new();
    for (key, lines) in &sites {
        let v = audit_group(key, lines);
        eprintln!(
            "  {} `{}` Ordering::{}: {} (exercised {})",
            key.file, key.symbol, key.ordering, v.verdict, v.exercised
        );
        entries.push(v);
    }
    let _ = std::panic::take_hook();

    let text = verdicts::render_verdicts(&entries);
    let out = root.join(verdicts::VERDICTS_FILE);
    if let Err(e) = std::fs::write(&out, text) {
        eprintln!("writing {} failed: {e}", out.display());
        return ExitCode::from(2);
    }
    let count = |v: &str| entries.iter().filter(|e| e.verdict == v).count();
    println!(
        "{}: {} verdicts ({} required, {} weakenable, {} minimal, {} unexercised)",
        Path::new(verdicts::VERDICTS_FILE).display(),
        entries.len(),
        count("required"),
        count("weakenable"),
        count("minimal"),
        count("unexercised"),
    );
    if count("unexercised") > 0 {
        println!("unexercised sites fail `--orderings-verify`; extend the scenario registry");
    }
    ExitCode::SUCCESS
}
