//! Flattened computation trees for simulation.
//!
//! The simulator does not execute a [`Problem`]'s search semantics — only
//! its *shape* matters for scheduling: which nodes have which children, how
//! much work each node performs, and how large its taskprivate workspace
//! is. [`SimTree::from_problem`] traverses a problem once and records
//! exactly that, so one traversal serves every (policy × worker-count)
//! simulation of a workload.

use adaptivetc_core::{Expansion, Problem};

/// A flattened tree: node 0 is the root; children of node `i` are the ids
/// `kids[kid_start[i] .. kid_start[i + 1]]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimTree {
    kid_start: Vec<u32>,
    kids: Vec<u32>,
    /// Work units per node (`Problem::node_work`), or empty if uniform 1.
    work: Vec<u32>,
    /// Workspace bytes per node (`Problem::state_bytes`), or empty if
    /// uniform.
    bytes: Vec<u32>,
    uniform_bytes: u32,
    leaves: u64,
    total_work: u64,
    depth: u32,
}

impl SimTree {
    /// Flatten a problem by depth-first traversal.
    ///
    /// # Panics
    ///
    /// Panics if the tree exceeds `u32::MAX` nodes.
    pub fn from_problem<P: Problem>(problem: &P) -> SimTree {
        struct Builder {
            kids: Vec<Vec<u32>>,
            work: Vec<u32>,
            bytes: Vec<u32>,
            leaves: u64,
            total_work: u64,
            depth: u32,
        }
        let mut b = Builder {
            kids: Vec::new(),
            work: Vec::new(),
            bytes: Vec::new(),
            leaves: 0,
            total_work: 0,
            depth: 0,
        };

        fn visit<P: Problem>(p: &P, st: &mut P::State, depth: u32, b: &mut Builder) -> u32 {
            let id = u32::try_from(b.kids.len()).expect("tree exceeds u32 nodes");
            b.kids.push(Vec::new());
            let w = p.node_work(st, depth);
            b.work.push(u32::try_from(w).unwrap_or(u32::MAX));
            b.bytes
                .push(u32::try_from(p.state_bytes(st)).unwrap_or(u32::MAX));
            b.total_work += w;
            b.depth = b.depth.max(depth);
            match p.expand(st, depth) {
                Expansion::Leaf(_) => {
                    b.leaves += 1;
                }
                Expansion::Children(cs) => {
                    if cs.is_empty() {
                        b.leaves += 1;
                    }
                    for c in cs {
                        p.apply(st, c);
                        let kid = visit(p, st, depth + 1, b);
                        p.undo(st, c);
                        b.kids[id as usize].push(kid);
                    }
                }
            }
            id
        }

        let mut state = problem.root();
        visit(problem, &mut state, 0, &mut b);

        // Flatten the child lists.
        let n = b.kids.len();
        let mut kid_start = Vec::with_capacity(n + 1);
        let mut kids = Vec::new();
        kid_start.push(0u32);
        for list in &b.kids {
            kids.extend_from_slice(list);
            kid_start.push(u32::try_from(kids.len()).expect("edge count fits u32"));
        }
        SimTree {
            kid_start,
            kids,
            work: b.work,
            bytes: b.bytes,
            uniform_bytes: 0,
            leaves: b.leaves,
            total_work: b.total_work,
            depth: b.depth,
        }
    }

    /// A synthetic tree built directly from child lists (tests, examples).
    ///
    /// # Panics
    ///
    /// Panics if a child id is out of range.
    pub fn from_lists(children: Vec<Vec<u32>>, uniform_work: u32, uniform_bytes: u32) -> SimTree {
        let n = children.len();
        let mut kid_start = Vec::with_capacity(n + 1);
        let mut kids = Vec::new();
        kid_start.push(0u32);
        let mut leaves = 0;
        for list in &children {
            for &k in list {
                assert!((k as usize) < n, "child id {k} out of range");
            }
            if list.is_empty() {
                leaves += 1;
            }
            kids.extend_from_slice(list);
            kid_start.push(kids.len() as u32);
        }
        SimTree {
            kid_start,
            kids,
            work: vec![uniform_work; n],
            bytes: Vec::new(),
            uniform_bytes,
            leaves,
            total_work: u64::from(uniform_work) * n as u64,
            depth: 0, // unknown for hand-built lists; not used by the engine
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.kid_start.len() - 1
    }

    /// Whether the tree is empty (it never is — the root always exists).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Children of a node.
    #[inline]
    pub fn children(&self, node: u32) -> &[u32] {
        let i = node as usize;
        &self.kids[self.kid_start[i] as usize..self.kid_start[i + 1] as usize]
    }

    /// Whether a node is a leaf (no children).
    #[inline]
    pub fn is_leaf(&self, node: u32) -> bool {
        self.children(node).is_empty()
    }

    /// Work units at a node.
    #[inline]
    pub fn work(&self, node: u32) -> u64 {
        u64::from(self.work[node as usize])
    }

    /// Workspace bytes at a node.
    #[inline]
    pub fn bytes(&self, node: u32) -> u64 {
        if self.bytes.is_empty() {
            u64::from(self.uniform_bytes)
        } else {
            u64::from(self.bytes[node as usize])
        }
    }

    /// Leaf count (the simulator's correctness check value).
    pub fn leaf_count(&self) -> u64 {
        self.leaves
    }

    /// Total work units over all nodes.
    pub fn total_work(&self) -> u64 {
        self.total_work
    }

    /// Maximum depth observed while flattening (0 for hand-built lists).
    pub fn depth(&self) -> u32 {
        self.depth
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use adaptivetc_core::serial;
    use adaptivetc_core::Expansion;

    struct Tern(u32);
    impl Problem for Tern {
        type State = u32;
        type Choice = u8;
        type Out = u64;
        fn root(&self) -> u32 {
            0
        }
        fn expand(&self, _: &u32, d: u32) -> Expansion<u8, u64> {
            if d == self.0 {
                Expansion::Leaf(1)
            } else {
                Expansion::Children(vec![0, 1, 2])
            }
        }
        fn apply(&self, s: &mut u32, _: u8) {
            *s += 1;
        }
        fn undo(&self, s: &mut u32, _: u8) {
            *s -= 1;
        }
    }

    #[test]
    fn flattening_matches_serial_metrics() {
        let p = Tern(6);
        let t = SimTree::from_problem(&p);
        let (_, r) = serial::run(&p);
        assert_eq!(t.len() as u64, r.nodes);
        assert_eq!(t.leaf_count(), r.leaves);
        assert_eq!(t.depth(), r.max_depth);
        assert_eq!(t.total_work(), r.work_units);
    }

    #[test]
    fn children_are_in_order() {
        let t = SimTree::from_problem(&Tern(2));
        assert_eq!(t.children(0).len(), 3);
        // DFS numbering: first child of the root is node 1.
        assert_eq!(t.children(0)[0], 1);
        assert!(t.is_leaf(t.children(t.children(0)[0])[0]));
    }

    #[test]
    fn from_lists_counts_leaves() {
        let t = SimTree::from_lists(vec![vec![1, 2], vec![], vec![3], vec![]], 5, 64);
        assert_eq!(t.len(), 4);
        assert_eq!(t.leaf_count(), 2);
        assert_eq!(t.work(0), 5);
        assert_eq!(t.bytes(3), 64);
        assert_eq!(t.total_work(), 20);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_lists_validates_ids() {
        SimTree::from_lists(vec![vec![7]], 1, 0);
    }
}
