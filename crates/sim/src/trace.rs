//! Feature-gated tracing plumbing for the simulator, mirroring
//! `adaptivetc-runtime`'s pattern: with the `trace` cargo feature **on**
//! the alias carries an optional collector reference through the
//! interpreter; with the feature **off** it collapses to `()` and every
//! `sev!` call site expands to nothing.

#[cfg(feature = "trace")]
pub(crate) type SimTracer<'a> = Option<&'a adaptivetc_trace::TraceCollector>;
#[cfg(not(feature = "trace"))]
pub(crate) type SimTracer<'a> = ();

/// Emit a simulator trace event at the current virtual time:
/// `sev!(self, wid, <expr>)` inside `Sim` methods, where `<expr>`
/// evaluates to an `adaptivetc_trace::EventKind` (imported as `Ev`).
/// Expands to nothing when the `trace` feature is off — the expression
/// tokens are removed before name resolution.
macro_rules! sev {
    ($sim:expr, $wid:expr, $kind:expr) => {
        #[cfg(feature = "trace")]
        {
            if let Some(t) = $sim.tracer {
                t.emit_at($wid, $sim.now, $kind);
            }
        }
    };
}
pub(crate) use sev;
