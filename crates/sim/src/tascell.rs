//! Virtual-time interpreter for the Tascell policy.
//!
//! Each virtual worker runs one task as an explicit-stack sequential
//! traversal, polling its request flag at every node. A thief installs a
//! request at a random busy victim and sleeps until the victim answers (at
//! its next poll) or a timeout fires. The victim answers by *temporary
//! backtracking*: it pays an undo/redo cost proportional to the distance to
//! the shallowest frame holding an untried choice, one workspace copy, and
//! a response latency. At the end of a task the victim blocks — it cannot
//! steal — until every subtree it handed out has delivered its result
//! (`wait_children`, the overhead of the paper's Figure 7).

use crate::cost::CostModel;
use crate::tree::SimTree;
use adaptivetc_core::{Config, RunReport, RunStats, XorShift64};
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// One level of a victim's traversal stack. `end` is normally the child
/// count, but a handed-over range task starts with a narrowed window, and a
/// respond() narrows the victim's own window.
struct TFrame {
    node: u32,
    kid: usize,
    end: usize,
    acc: u64,
}

/// Where a completed task's total goes.
#[derive(Debug, Clone, Copy)]
enum TOut {
    Root,
    /// Into the task currently running (or being waited on) by a victim.
    Victim(usize),
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TState {
    /// Executing its task (stack non-empty).
    Busy,
    /// Requesting from `victim`; sleeping until response or timeout.
    Requesting(usize),
    /// Task traversal finished; blocked on handed-out children.
    WaitingChildren,
    /// No task; between steal attempts.
    Idle,
    Done,
}

struct TWorker {
    stack: Vec<TFrame>,
    out: TOut,
    /// Subtrees handed out minus results received for the current task.
    pending_children: u32,
    /// Results received from handed-out subtrees.
    extra: u64,
    /// Accumulated result of the finished traversal (valid while waiting).
    own_total: u64,
    request_from: Option<usize>,
    stats: RunStats,
    rng: XorShift64,
    state: TState,
    /// Range assigned by a responding victim: children `[from, to)` of
    /// `node`.
    assigned: Option<(u32, usize, usize, TOut)>,
    idle_since: Option<u64>,
    wait_since: u64,
    epoch: u64,
}

pub(crate) struct TascellSim<'t> {
    tree: &'t SimTree,
    cost: CostModel,
    workers: Vec<TWorker>,
    heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>,
    seq: u64,
    root_value: u64,
    root_done: Option<u64>,
    now: u64,
}

impl<'t> TascellSim<'t> {
    pub(crate) fn new(tree: &'t SimTree, cfg: &Config, cost: CostModel) -> Self {
        let mut seeder = XorShift64::new(cfg.seed);
        let workers = (0..cfg.threads)
            .map(|_| TWorker {
                stack: Vec::new(),
                out: TOut::Root,
                pending_children: 0,
                extra: 0,
                own_total: 0,
                request_from: None,
                stats: RunStats::default(),
                rng: seeder.split(),
                state: TState::Idle,
                assigned: None,
                idle_since: None,
                wait_since: 0,
                epoch: 0,
            })
            .collect();
        TascellSim {
            tree,
            cost,
            workers,
            heap: BinaryHeap::new(),
            seq: 0,
            root_value: 0,
            root_done: None,
            now: 0,
        }
    }

    fn schedule(&mut self, wid: usize, at: u64) {
        self.seq += 1;
        let epoch = self.workers[wid].epoch;
        self.heap.push(Reverse((at, self.seq, wid, epoch)));
    }

    /// Begin a task over children `[from, to)` of `node` (the root task uses
    /// the full range), delivering its total to `out`. The node itself was
    /// already executed by whoever handed the range over, except for the
    /// root task where `from == 0 && to == children` and the root node is
    /// charged here.
    fn start_task(
        &mut self,
        wid: usize,
        node: u32,
        from: usize,
        to: usize,
        out: TOut,
        root_task: bool,
    ) -> u64 {
        {
            let w = &mut self.workers[wid];
            debug_assert!(w.stack.is_empty());
            w.out = out;
            w.pending_children = 0;
            w.extra = 0;
            w.own_total = 0;
            w.state = TState::Busy;
        }
        let mut cost = self.cost.poll_ns;
        let w = &mut self.workers[wid];
        w.stats.polls += 1;
        w.stats.time.poll_ns += self.cost.poll_ns;
        if root_task {
            let work = self.cost.work_ns(self.tree.work(node));
            cost += work;
            w.stats.nodes += 1;
            w.stats.time.busy_ns += work;
        }
        if self.tree.is_leaf(node) {
            w.own_total = 1;
            // Task completion handled on the next step.
        } else {
            w.stats.fake_tasks += 1;
            w.stack.push(TFrame {
                node,
                kid: from,
                end: to,
                acc: 0,
            });
        }
        cost
    }

    /// Deliver a completed task total.
    fn deliver(&mut self, out: TOut, value: u64) {
        match out {
            TOut::Root => {
                self.root_value = value;
                self.root_done = Some(self.now);
            }
            TOut::Victim(v) => {
                let at = self.now;
                let w = &mut self.workers[v];
                debug_assert!(w.pending_children > 0);
                w.pending_children -= 1;
                w.extra += value;
                if w.pending_children == 0 && w.state == TState::WaitingChildren {
                    // Wake the victim: its task can now complete.
                    w.epoch += 1;
                    self.schedule(v, at);
                }
            }
        }
    }

    /// Answer a pending request, if any, by temporary backtracking.
    /// Returns the extra virtual cost paid by the victim.
    fn respond(&mut self, wid: usize) -> u64 {
        let Some(thief) = self.workers[wid].request_from.take() else {
            return 0;
        };
        // The thief may have timed out and moved on.
        if self.workers[thief].state != TState::Requesting(wid) {
            return 0;
        }
        // Shallowest frame with an untried choice.
        let split = self.workers[wid].stack.iter().position(|f| f.kid < f.end);
        let Some(level) = split else {
            // Nothing to give: fail the thief immediately.
            let at = self.now;
            let t = &mut self.workers[thief];
            t.state = TState::Idle;
            t.stats.steals_failed += 1;
            t.epoch += 1;
            self.schedule(thief, at);
            return 0;
        };
        let depth = self.workers[wid].stack.len();
        // Tascell's parallel-for split: hand away the second half of the
        // untried range, keep the first half.
        let (node, from, to, bytes) = {
            let f = &mut self.workers[wid].stack[level];
            let remaining = f.end - f.kid;
            let give = (remaining / 2).max(1);
            let from = f.end - give;
            let to = f.end;
            f.end = from;
            (f.node, from, to, self.tree.bytes(f.node))
        };
        let backtrack = self.cost.backtrack_level_ns * 2 * (depth - level) as u64;
        let copy = self.cost.copy_ns(bytes, true);
        let cost = backtrack + copy + self.cost.respond_ns;
        {
            let w = &mut self.workers[wid];
            w.pending_children += 1;
            w.stats.tasks_created += 1;
            w.stats.steal_responses += 1;
            w.stats.copies += 1;
            w.stats.allocations += 1;
            w.stats.copy_bytes += bytes;
            w.stats.time.copy_ns += copy;
            w.stats.time.deque_ns += backtrack + self.cost.respond_ns;
        }
        // Hand the range to the thief.
        let at = self.now + cost;
        let t = &mut self.workers[thief];
        t.assigned = Some((node, from, to, TOut::Victim(wid)));
        t.state = TState::Idle; // will pick the assignment up on wake
        t.stats.steals_ok += 1;
        t.epoch += 1;
        self.schedule(thief, at);
        cost
    }

    /// One event step for a worker; `Some(cost)` reschedules.
    fn step(&mut self, wid: usize) -> Option<u64> {
        match self.workers[wid].state {
            TState::Done => None,
            TState::Requesting(victim) => {
                // Timeout fired: retract and go idle.
                if self.workers[victim].request_from == Some(wid) {
                    self.workers[victim].request_from = None;
                }
                let w = &mut self.workers[wid];
                w.state = TState::Idle;
                w.stats.steals_failed += 1;
                Some(self.cost.steal_ns)
            }
            TState::WaitingChildren => {
                // Woken: all handed-out children delivered.
                let w = &mut self.workers[wid];
                debug_assert_eq!(w.pending_children, 0);
                w.stats.time.wait_children_ns += self.now - w.wait_since;
                let total = w.own_total + w.extra;
                let out = w.out;
                w.state = TState::Idle;
                self.deliver(out, total);
                Some(self.cost.poll_ns.max(1))
            }
            TState::Idle => {
                if let Some((node, from, to, out)) = self.workers[wid].assigned.take() {
                    let w = &mut self.workers[wid];
                    if let Some(since) = w.idle_since.take() {
                        w.stats.time.steal_wait_ns += self.now - since;
                    }
                    return Some(self.start_task(wid, node, from, to, out, false));
                }
                if self.root_done.is_some() {
                    let w = &mut self.workers[wid];
                    if let Some(since) = w.idle_since.take() {
                        w.stats.time.steal_wait_ns += self.now - since;
                    }
                    w.state = TState::Done;
                    return None;
                }
                if self.workers[wid].idle_since.is_none() {
                    self.workers[wid].idle_since = Some(self.now);
                }
                // Reject requests aimed at us while idle.
                if let Some(thief) = self.workers[wid].request_from.take() {
                    if self.workers[thief].state == TState::Requesting(wid) {
                        let at = self.now;
                        let t = &mut self.workers[thief];
                        t.state = TState::Idle;
                        t.stats.steals_failed += 1;
                        t.epoch += 1;
                        self.schedule(thief, at);
                    }
                }
                let n = self.workers.len();
                if n == 1 {
                    return Some(self.cost.steal_backoff_ns);
                }
                let victim = {
                    let w = &mut self.workers[wid];
                    let mut v = w.rng.below_usize(n - 1);
                    if v >= wid {
                        v += 1;
                    }
                    v
                };
                let victim_busy = matches!(
                    self.workers[victim].state,
                    TState::Busy | TState::WaitingChildren
                );
                if victim_busy && self.workers[victim].request_from.is_none() {
                    self.workers[victim].request_from = Some(wid);
                    let w = &mut self.workers[wid];
                    w.state = TState::Requesting(victim);
                    w.stats.steal_requests += 1;
                    w.epoch += 1;
                    let at = self.now + self.cost.request_timeout_ns;
                    self.schedule(wid, at);
                    None // sleeping until response or timeout
                } else {
                    self.workers[wid].stats.steals_failed += 1;
                    Some(self.cost.steal_ns + self.cost.steal_backoff_ns)
                }
            }
            TState::Busy => {
                // Answer any pending request first (the per-node poll).
                let respond_cost = self.respond(wid);
                let Some(top) = self.workers[wid].stack.last() else {
                    // Leaf-only task: traversal finished at start_task.
                    return self.finish_traversal(wid).map(|c| respond_cost + c);
                };
                let (node, kid, end) = (top.node, top.kid, top.end);
                let kids = self.tree.children(node);
                if kid >= end {
                    // Close this frame.
                    let f = self.workers[wid].stack.pop().expect("just peeked");
                    match self.workers[wid].stack.last_mut() {
                        Some(parent) => parent.acc += f.acc,
                        None => self.workers[wid].own_total = f.acc,
                    }
                    if self.workers[wid].stack.is_empty() {
                        return self.finish_traversal(wid).map(|c| respond_cost + c);
                    }
                    // Free bookkeeping plus any respond cost.
                    return Some(respond_cost.max(1));
                }
                let child = kids[kid];
                self.workers[wid].stack.last_mut().expect("non-empty").kid += 1;
                let mut cost =
                    respond_cost + self.cost.work_ns(self.tree.work(child)) + self.cost.poll_ns;
                {
                    let w = &mut self.workers[wid];
                    w.stats.nodes += 1;
                    w.stats.polls += 1;
                    w.stats.time.busy_ns += self.cost.work_ns(self.tree.work(child));
                    w.stats.time.poll_ns += self.cost.poll_ns;
                }
                if self.tree.is_leaf(child) {
                    self.workers[wid].stack.last_mut().expect("non-empty").acc += 1;
                } else {
                    let child_end = self.tree.children(child).len();
                    self.workers[wid].stats.fake_tasks += 1;
                    self.workers[wid].stack.push(TFrame {
                        node: child,
                        kid: 0,
                        end: child_end,
                        acc: 0,
                    });
                    cost += self.cost.backtrack_level_ns / 4; // nested-function bookkeeping
                    self.workers[wid].stats.time.deque_ns += self.cost.backtrack_level_ns / 4;
                }
                Some(cost)
            }
        }
    }

    /// The task's own traversal is done: block on handed-out children
    /// (`None`, the last delivering child wakes us) or complete immediately.
    fn finish_traversal(&mut self, wid: usize) -> Option<u64> {
        let w = &mut self.workers[wid];
        if w.pending_children > 0 {
            w.state = TState::WaitingChildren;
            w.wait_since = self.now;
            w.stats.suspensions += 1;
            w.epoch += 1;
            None
        } else {
            let total = w.own_total + w.extra;
            let out = w.out;
            w.state = TState::Idle;
            self.deliver(out, total);
            Some(1)
        }
    }

    pub(crate) fn run(mut self) -> (u64, RunReport) {
        let n = self.workers.len();
        self.workers[0].stats.tasks_created += 1;
        let root_kids = self.tree.children(0).len();
        let first_cost = self.start_task(0, 0, 0, root_kids, TOut::Root, true);
        self.schedule(0, first_cost);
        for wid in 1..n {
            self.schedule(wid, 0);
        }
        while let Some(Reverse((t, _, wid, epoch))) = self.heap.pop() {
            if self.workers[wid].epoch != epoch {
                continue;
            }
            self.now = t;
            if let Some(cost) = self.step(wid) {
                let at = t + cost.max(1);
                self.schedule(wid, at);
            }
        }
        let wall = self.root_done.expect("simulation must complete the root");
        let per_worker: Vec<RunStats> = self.workers.into_iter().map(|w| w.stats).collect();
        (self.root_value, RunReport::from_workers(per_worker, wall))
    }
}
