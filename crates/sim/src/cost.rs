//! The virtual-time cost model.
//!
//! Every scheduling activity is charged a configurable number of virtual
//! nanoseconds. The defaults were calibrated against the threaded runtime
//! of this repository running single-threaded on the development machine
//! (see EXPERIMENTS.md); what matters for reproducing the paper's *shapes*
//! is the ratios — e.g. that a workspace copy of a few hundred bytes costs
//! a few node-work units, and that a steal round-trip costs tens of them.
//!
//! *Where* a copy is charged depends on `Config::workspace`: under the
//! eager policy every simulated spawn pays `alloc_ns` + the per-byte copy
//! up front; under copy-on-steal the spawn site records a saved copy and
//! the charge moves to the thief at the moment of a successful steal
//! (matching the threaded engine's materialisation). Region seals are not
//! modelled — in the real engine they are a liveness device, not a
//! steady-state cost.

use adaptivetc_core::DequeBackend;

/// Virtual durations (ns) for each scheduling activity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Per work unit of `Problem::node_work` (expansion, apply/undo).
    pub node_ns: u64,
    /// Creating a task: frame allocation and initialisation.
    pub task_create_ns: u64,
    /// One d-e-que operation (push or pop, THE fast path).
    pub deque_op_ns: u64,
    /// The share of `deque_op_ns` paid to the owner-side pop fence (THE
    /// and Chase-Lev both order the tail decrement against the thief's
    /// cursor read with one SeqCst fence per pop). The fence-free backend
    /// performs no such fence, so its owner pops skip this charge; see
    /// [`CostModel::pop_ns`]. Calibrated as the measured gap between a
    /// fenced and an unfenced pop fast path on the development machine.
    pub pop_fence_ns: u64,
    /// Workspace allocation (skipped by Cilk-SYNCHED's buffer reuse).
    pub alloc_ns: u64,
    /// Copying one byte of taskprivate workspace, in hundredths of a ns
    /// (`25` = 0.25 ns/byte ≈ 4 GB/s memcpy).
    pub copy_byte_centi_ns: u64,
    /// A steal attempt (locking the victim deque and inspecting it).
    pub steal_ns: u64,
    /// Extra idle time after a failed steal before the next attempt.
    pub steal_backoff_ns: u64,
    /// Polling the `need_task` flag / request flag once.
    pub poll_ns: u64,
    /// Tascell: undoing or re-applying one level during temporary
    /// backtracking.
    pub backtrack_level_ns: u64,
    /// Tascell: request/response messaging latency.
    pub respond_ns: u64,
    /// Tascell: a thief's request timeout before retrying elsewhere.
    pub request_timeout_ns: u64,
}

impl CostModel {
    /// Costs calibrated against this repository's threaded runtime.
    pub fn calibrated() -> Self {
        CostModel {
            node_ns: 120,
            task_create_ns: 90,
            deque_op_ns: 25,
            pop_fence_ns: 15,
            alloc_ns: 40,
            copy_byte_centi_ns: 25,
            steal_ns: 120,
            steal_backoff_ns: 400,
            poll_ns: 3,
            backtrack_level_ns: 30,
            respond_ns: 250,
            request_timeout_ns: 10_000,
        }
    }

    /// Cost of copying `bytes` of workspace, including allocation when
    /// `alloc` is true.
    pub fn copy_ns(&self, bytes: u64, alloc: bool) -> u64 {
        let alloc_ns = if alloc { self.alloc_ns } else { 0 };
        alloc_ns + bytes * self.copy_byte_centi_ns / 100
    }

    /// Cost of executing `units` of node work.
    pub fn work_ns(&self, units: u64) -> u64 {
        units * self.node_ns
    }

    /// Cost of one owner-side pop under `backend`.
    ///
    /// `deque_op_ns` was calibrated on THE, whose pop fast path carries a
    /// SeqCst fence; the fence-free backend's pop is a plain stack pop
    /// plus two relaxed stores, so it gets the fence share back. Pushes
    /// are charged the flat `deque_op_ns` on every backend (no backend
    /// fences its push fast path), and steal traffic is covered by
    /// `steal_ns` unchanged — the thief-side CAS exists on all backends.
    pub fn pop_ns(&self, backend: DequeBackend) -> u64 {
        match backend {
            DequeBackend::FenceFree => self.deque_op_ns.saturating_sub(self.pop_fence_ns),
            _ => self.deque_op_ns,
        }
    }
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel::calibrated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn copy_scales_with_bytes() {
        let c = CostModel::calibrated();
        assert!(c.copy_ns(1000, true) > c.copy_ns(100, true));
        assert_eq!(
            c.copy_ns(400, true) - c.copy_ns(400, false),
            c.alloc_ns,
            "alloc is a fixed increment"
        );
    }

    #[test]
    fn zero_byte_copy_costs_only_alloc() {
        let c = CostModel::calibrated();
        assert_eq!(c.copy_ns(0, false), 0);
        assert_eq!(c.copy_ns(0, true), c.alloc_ns);
    }

    #[test]
    fn work_is_linear() {
        let c = CostModel::calibrated();
        assert_eq!(c.work_ns(7), 7 * c.node_ns);
    }

    #[test]
    fn fence_free_pops_skip_the_fence_share() {
        let c = CostModel::calibrated();
        assert_eq!(
            c.pop_ns(DequeBackend::FenceFree) + c.pop_fence_ns,
            c.deque_op_ns
        );
        for backend in [
            DequeBackend::The,
            DequeBackend::ChaseLev,
            DequeBackend::Pool,
        ] {
            assert_eq!(c.pop_ns(backend), c.deque_op_ns, "{}", backend.name());
        }
    }
}
