//! Virtual-time interpreter for the deque-based policies (Cilk,
//! Cilk-SYNCHED, the two cut-off baselines, AdaptiveTC).
//!
//! Each virtual worker owns an explicit continuation stack whose entries
//! mirror the threaded engine's recursion: `Node` (expand and dispatch),
//! `Loop`/`PopCheck` (the frame spawn loop and its THE pop), `SeqLoop` (the
//! sequence/check fake-task recursion) and `SpecialLoop`/`SpecialPop` (the
//! special-task section). A binary heap of `(virtual time, sequence,
//! worker)` events drives the interleaving deterministically; every costed
//! activity advances only the acting worker's clock.

use crate::cost::CostModel;
use crate::trace::{sev, SimTracer};
use crate::tree::SimTree;
use adaptivetc_core::{Config, RunReport, RunStats, WorkspacePolicy, XorShift64};
use adaptivetc_strategy::{WorkerStrategy, HARD_STEAL_STREAK};
#[cfg(feature = "trace")]
use adaptivetc_trace::EventKind as Ev;
use std::cell::RefCell;
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::rc::Rc;

/// Scheduling policies the simulator can run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Policy {
    /// Work-first Cilk: every spawn is a task with a workspace copy.
    Cilk,
    /// Cilk with workspace-buffer reuse (allocation cost elided).
    CilkSynched,
    /// Fixed cut-off with copy-free sequential recursion below.
    CutoffProgrammer(u32),
    /// Runtime cut-off (`⌈log₂ N⌉`) with a workspace copy at every
    /// sequential node.
    CutoffLibrary,
    /// The AdaptiveTC five-version state machine.
    AdaptiveTc,
    /// Tascell request-driven backtracking (its own interpreter).
    Tascell,
    /// Help-first Cilk (SLAW's other pole, discussed in the paper's §2):
    /// every spawn pushes the *child* and the parent keeps running; deque
    /// occupancy grows with breadth instead of depth.
    HelpFirst,
}

impl Policy {
    /// Display name matching the paper's legends.
    pub fn name(&self) -> &'static str {
        match self {
            Policy::Cilk => "Cilk",
            Policy::CilkSynched => "Cilk-SYNCHED",
            Policy::CutoffProgrammer(_) => "Cutoff-programmer",
            Policy::CutoffLibrary => "Cutoff-library",
            Policy::AdaptiveTc => "AdaptiveTC",
            Policy::Tascell => "Tascell",
            Policy::HelpFirst => "Help-first",
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Regime {
    Fast,
    Fast2,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SeqKind {
    Plain,
    Copy,
    Check,
}

struct FrameMut {
    next: usize,
    outstanding: u32,
    acc: u64,
}

struct Frame {
    node: u32,
    tdepth: u32,
    parent: Deliver,
    m: RefCell<FrameMut>,
}

type FrameRef = Rc<Frame>;

impl Frame {
    fn new(node: u32, tdepth: u32, parent: Deliver) -> FrameRef {
        Rc::new(Frame {
            node,
            tdepth,
            parent,
            m: RefCell::new(FrameMut {
                next: 0,
                outstanding: 1,
                acc: 0,
            }),
        })
    }
}

#[derive(Clone)]
enum Deliver {
    /// The root result.
    Root,
    /// Absorb into a frame (asynchronous join).
    Frame(FrameRef),
    /// Add to the accumulator of the worker's current top stack entry.
    Below,
    /// Wake the blocked worker (special-task sync).
    Wake(usize),
}

enum Entry {
    Node {
        node: u32,
        tdepth: u32,
        regime: Regime,
        out: Deliver,
    },
    Loop {
        frame: FrameRef,
        regime: Regime,
    },
    PopCheck {
        frame: FrameRef,
        regime: Regime,
    },
    SeqLoop {
        node: u32,
        kid: usize,
        acc: u64,
        kind: SeqKind,
        /// Task depth of `node` (meaningful for `SeqKind::Check`, whose band
        /// is bounded by `2 * cutoff`).
        tdepth: u32,
        out: Deliver,
    },
    SpecialLoop {
        node: u32,
        kid: usize,
        sframe: FrameRef,
        out: Deliver,
    },
    SpecialPop {
        sframe: FrameRef,
    },
}

enum DqEntry {
    Task(FrameRef),
    Special(FrameRef),
    /// A spawned child task (help-first policy): the node itself, not a
    /// continuation.
    Child {
        node: u32,
        tdepth: u32,
        out: Deliver,
    },
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WState {
    Active,
    Waiting,
    Done,
}

/// Outcome of processing one stack entry.
enum Flow {
    /// Pay a virtual cost, then schedule the next event.
    Pay(u64),
    /// Free bookkeeping: continue within the same event.
    Free,
    /// The worker blocked (special-task sync): no reschedule.
    Block,
}

struct WorkerSim {
    stack: Vec<Entry>,
    deque: VecDeque<DqEntry>,
    stolen_num: u32,
    need_task: bool,
    /// This worker's `need_task` threshold; the adaptive threshold
    /// policy retunes it mid-run (mirrors `NeedTask::set_threshold`).
    max_stolen: u32,
    /// Worker-private strategy state, mirroring the threaded engine's
    /// per-worker bundle clone.
    strategy: WorkerStrategy,
    /// Consecutive failed steal probes since this worker's last success.
    fail_streak: u32,
    stats: RunStats,
    rng: XorShift64,
    state: WState,
    /// Pending wake value for a special-task sync.
    wake: Option<(u64, Deliver)>,
    /// Where the blocked special sync should deliver on wake.
    wait_out: Option<Deliver>,
    wait_since: u64,
    idle_since: Option<u64>,
    epoch: u64,
}

pub(crate) struct Sim<'t> {
    tree: &'t SimTree,
    cost: CostModel,
    policy: Policy,
    cutoff: u32,
    /// Copy-on-steal workspaces: spawns skip the eager clone; thieves pay
    /// one materialisation copy per stolen frame instead. Mirrors the
    /// threaded engine's gating (never the faithful Cilk baselines). The
    /// owner-side region seals around special sections are not modelled —
    /// they are a liveness device, not a steady-state cost.
    cos: bool,
    /// The deque backend being simulated. The sim's deques are exact
    /// (`VecDeque`) regardless — multiplicity and the claim layer are a
    /// memory-protocol concern, not a virtual-time one — but the owner's
    /// pop charge depends on whether the backend fences its pop fast path
    /// (see [`CostModel::pop_ns`]).
    backend: adaptivetc_core::DequeBackend,
    workers: Vec<WorkerSim>,
    heap: BinaryHeap<Reverse<(u64, u64, usize, u64)>>, // (time, seq, wid, epoch)
    seq: u64,
    root_value: u64,
    root_done: Option<u64>,
    now: u64,
    /// Event sink stamping the virtual clock (`()` when the `trace`
    /// feature is compiled out; `None` when `Config::trace` is off).
    #[cfg_attr(not(feature = "trace"), allow(dead_code))]
    tracer: SimTracer<'t>,
}

impl<'t> Sim<'t> {
    pub(crate) fn new(
        tree: &'t SimTree,
        cfg: &Config,
        cost: CostModel,
        policy: Policy,
        tracer: SimTracer<'t>,
    ) -> Self {
        let mut seeder = XorShift64::new(cfg.seed);
        let cutoff = match policy {
            Policy::CutoffProgrammer(d) => d.max(1),
            _ => cfg.cutoff_depth().max(1),
        };
        // Strategy overrides parameterise the AdaptiveTC policy only;
        // every comparison arm pins the paper-default baseline.
        let strategy = if matches!(policy, Policy::AdaptiveTc) {
            WorkerStrategy::from_config(cfg, cutoff)
        } else {
            WorkerStrategy::baseline(cutoff, cfg.max_stolen_num)
        };
        let workers = (0..cfg.threads)
            .map(|_| WorkerSim {
                stack: Vec::new(),
                deque: VecDeque::new(),
                stolen_num: 0,
                need_task: false,
                max_stolen: cfg.max_stolen_num,
                strategy: strategy.clone(),
                fail_streak: 0,
                stats: RunStats::default(),
                rng: seeder.split(),
                state: WState::Active,
                wake: None,
                wait_out: None,
                wait_since: 0,
                idle_since: None,
                epoch: 0,
            })
            .collect();
        let cos = cfg.workspace == WorkspacePolicy::CopyOnSteal
            && matches!(
                policy,
                Policy::AdaptiveTc | Policy::CutoffProgrammer(_) | Policy::CutoffLibrary
            );
        Sim {
            tree,
            cost,
            policy,
            cutoff,
            cos,
            backend: cfg.backend,
            workers,
            heap: BinaryHeap::new(),
            seq: 0,
            root_value: 0,
            root_done: None,
            now: 0,
            tracer,
        }
    }

    fn schedule(&mut self, wid: usize, at: u64) {
        self.seq += 1;
        let epoch = self.workers[wid].epoch;
        self.heap.push(Reverse((at, self.seq, wid, epoch)));
    }

    fn task_mode(&self, wid: usize, tdepth: u32, regime: Regime) -> bool {
        match self.policy {
            Policy::Cilk | Policy::CilkSynched => true,
            Policy::CutoffProgrammer(_) | Policy::CutoffLibrary => tdepth < self.cutoff,
            // The creation policy, mirroring the threaded engine: the
            // default adaptive bundle at rest is exactly the fast /
            // fast_2 cutoff pair on `self.cutoff`.
            Policy::AdaptiveTc => {
                let w = &self.workers[wid];
                w.strategy
                    .creation
                    .real_task(tdepth, matches!(regime, Regime::Fast2), || w.deque.len())
            }
            Policy::HelpFirst => true,
            Policy::Tascell => unreachable!("Tascell runs in its own interpreter"),
        }
    }

    /// Which sequential version a non-task node runs: the check version
    /// recurses at every depth in the fast regime (Appendix C); the fast_2
    /// regime falls through to the sequence version.
    fn seq_kind(&self, regime: Regime, _tdepth: u32) -> SeqKind {
        match self.policy {
            Policy::CutoffProgrammer(_) => SeqKind::Plain,
            Policy::CutoffLibrary => SeqKind::Copy,
            Policy::AdaptiveTc => match regime {
                Regime::Fast => SeqKind::Check,
                Regime::Fast2 => SeqKind::Plain,
            },
            _ => unreachable!("Cilk-style policies never leave task mode"),
        }
    }

    /// The paper's workspace copy, charged and recorded.
    fn charge_copy(&mut self, wid: usize, bytes: u64) -> u64 {
        let alloc = self.policy != Policy::CilkSynched;
        let ns = self.cost.copy_ns(bytes, alloc);
        let st = &mut self.workers[wid].stats;
        st.copies += 1;
        st.copy_bytes += bytes;
        if alloc {
            st.allocations += 1;
        }
        st.time.copy_ns += ns;
        ns
    }

    fn deliver(&mut self, out: Deliver, value: u64, wid: usize) {
        let mut out = out;
        let mut value = value;
        loop {
            match out {
                Deliver::Root => {
                    self.root_value = value;
                    self.root_done = Some(self.now);
                    return;
                }
                Deliver::Below => {
                    match self.workers[wid]
                        .stack
                        .last_mut()
                        .expect("Below requires an enclosing sequential entry")
                    {
                        Entry::SeqLoop { acc, .. } => *acc += value,
                        _ => unreachable!("Below delivers into a SeqLoop"),
                    }
                    return;
                }
                Deliver::Wake(target) => {
                    let at = self.now;
                    let w = &mut self.workers[target];
                    debug_assert_eq!(w.state, WState::Waiting);
                    let final_out = w.wait_out.take().expect("waiter stored its out");
                    w.wake = Some((value, final_out));
                    w.state = WState::Active;
                    w.epoch += 1;
                    self.schedule(target, at);
                    return;
                }
                Deliver::Frame(f) => {
                    let completed = {
                        let mut m = f.m.borrow_mut();
                        m.acc += value;
                        m.outstanding -= 1;
                        (m.outstanding == 0).then_some(m.acc)
                    };
                    match completed {
                        Some(v) => {
                            value = v;
                            out = f.parent.clone();
                        }
                        None => return,
                    }
                }
            }
        }
    }

    /// Execute one costed step for a worker; returns the cost, or `None` if
    /// the worker blocked or finished (no reschedule).
    fn step(&mut self, wid: usize) -> Option<u64> {
        // A pending special-task wake is consumed first.
        if let Some((value, out)) = self.workers[wid].wake.take() {
            let waited = self.now - self.workers[wid].wait_since;
            self.workers[wid].stats.time.wait_children_ns += waited;
            self.deliver(out, value, wid);
        }
        loop {
            let Some(entry) = self.workers[wid].stack.pop() else {
                return self.steal_step(wid);
            };
            match self.exec(wid, entry) {
                Flow::Pay(cost) => return Some(cost),
                Flow::Free => {} // zero-cost bookkeeping: keep going
                Flow::Block => return None,
            }
        }
    }

    /// Process one stack entry.
    fn exec(&mut self, wid: usize, entry: Entry) -> Flow {
        match entry {
            Entry::Node {
                node,
                tdepth,
                regime,
                out,
            } => {
                let mut cost = self.cost.work_ns(self.tree.work(node));
                self.workers[wid].stats.nodes += 1;
                self.workers[wid].stats.time.busy_ns += cost;
                if self.tree.is_leaf(node) {
                    self.deliver(out, 1, wid);
                    return Flow::Pay(cost);
                }
                if self.task_mode(wid, tdepth, regime) {
                    let frame = Frame::new(node, tdepth, out);
                    self.workers[wid].stack.push(Entry::Loop { frame, regime });
                    return Flow::Pay(cost);
                }
                match self.seq_kind(regime, tdepth) {
                    SeqKind::Check => {
                        cost += self.poll(wid);
                        if self.take_need_task(wid) {
                            cost += self.start_special(wid, node, tdepth, out);
                        } else {
                            self.workers[wid].stats.fake_tasks += 1;
                            sev!(self, wid, Ev::FakeTask { depth: tdepth });
                            self.workers[wid].stack.push(Entry::SeqLoop {
                                node,
                                kid: 0,
                                acc: 0,
                                kind: SeqKind::Check,
                                tdepth,
                                out,
                            });
                        }
                    }
                    kind => {
                        self.workers[wid].stats.fake_tasks += 1;
                        sev!(self, wid, Ev::FakeTask { depth: tdepth });
                        self.workers[wid].stack.push(Entry::SeqLoop {
                            node,
                            kid: 0,
                            acc: 0,
                            kind,
                            tdepth,
                            out,
                        });
                    }
                }
                Flow::Pay(cost)
            }

            Entry::SeqLoop {
                node,
                kid,
                acc,
                kind,
                tdepth,
                out,
            } => {
                let kids = self.tree.children(node);
                if kid >= kids.len() {
                    self.deliver(out, acc, wid);
                    return Flow::Free;
                }
                let child = kids[kid];
                self.workers[wid].stack.push(Entry::SeqLoop {
                    node,
                    kid: kid + 1,
                    acc,
                    kind,
                    tdepth,
                    out,
                });
                let mut cost = self.cost.work_ns(self.tree.work(child));
                self.workers[wid].stats.nodes += 1;
                self.workers[wid].stats.time.busy_ns += cost;
                if kind == SeqKind::Copy {
                    cost += self.charge_copy(wid, self.tree.bytes(node));
                }
                if self.tree.is_leaf(child) {
                    self.deliver(Deliver::Below, 1, wid);
                    return Flow::Pay(cost);
                }
                let child_kind = kind;
                match child_kind {
                    SeqKind::Check => {
                        cost += self.poll(wid);
                        if self.take_need_task(wid) {
                            cost += self.start_special(wid, child, tdepth + 1, Deliver::Below);
                        } else {
                            self.workers[wid].stats.fake_tasks += 1;
                            sev!(self, wid, Ev::FakeTask { depth: tdepth + 1 });
                            self.workers[wid].stack.push(Entry::SeqLoop {
                                node: child,
                                kid: 0,
                                acc: 0,
                                kind: child_kind,
                                tdepth: tdepth + 1,
                                out: Deliver::Below,
                            });
                        }
                    }
                    _ => {
                        self.workers[wid].stats.fake_tasks += 1;
                        sev!(self, wid, Ev::FakeTask { depth: tdepth + 1 });
                        self.workers[wid].stack.push(Entry::SeqLoop {
                            node: child,
                            kid: 0,
                            acc: 0,
                            kind: child_kind,
                            tdepth: tdepth + 1,
                            out: Deliver::Below,
                        });
                    }
                }
                Flow::Pay(cost)
            }

            Entry::Loop { frame, regime } => {
                let kids = self.tree.children(frame.node);
                let next = {
                    let mut m = frame.m.borrow_mut();
                    if m.next < kids.len() {
                        let child = kids[m.next];
                        m.next += 1;
                        m.outstanding += 1;
                        // The continuation after the last spawn holds
                        // nothing stealable: elide its deque entry (dead
                        // continuations would otherwise satisfy thieves
                        // without feeding them).
                        Some((child, m.next < kids.len()))
                    } else {
                        None
                    }
                };
                match next {
                    Some((child, stealable)) => {
                        let mut cost = self.cost.task_create_ns;
                        {
                            let st = &mut self.workers[wid].stats;
                            st.tasks_created += 1;
                            st.time.deque_ns += self.cost.task_create_ns;
                        }
                        let tdepth = frame.tdepth + 1;
                        sev!(self, wid, Ev::Spawn { depth: tdepth });
                        if self.cos {
                            // The child borrows the live workspace; the
                            // clone is deferred to a thief, if any.
                            self.workers[wid].stats.workspace_copies_saved += 1;
                            sev!(self, wid, Ev::CopySaved);
                        } else {
                            cost += self.charge_copy(wid, self.tree.bytes(frame.node));
                        }
                        let parent = Deliver::Frame(Rc::clone(&frame));
                        if self.policy == Policy::HelpFirst {
                            // Help-first: enqueue the child, keep running the
                            // parent's loop.
                            cost += self.cost.deque_op_ns;
                            sev!(self, wid, Ev::Push);
                            let w = &mut self.workers[wid];
                            w.stats.deque_pushes += 1;
                            w.stats.time.deque_ns += self.cost.deque_op_ns;
                            w.deque.push_back(DqEntry::Child {
                                node: child,
                                tdepth,
                                out: parent,
                            });
                            w.stats.deque_peak = w.stats.deque_peak.max(w.deque.len() as u64);
                            w.stack.push(Entry::Loop { frame, regime });
                            return Flow::Pay(cost);
                        }
                        if stealable {
                            sev!(self, wid, Ev::Push);
                        }
                        let w = &mut self.workers[wid];
                        if stealable {
                            cost += self.cost.deque_op_ns;
                            w.stats.deque_pushes += 1;
                            w.stats.time.deque_ns += self.cost.deque_op_ns;
                            w.deque.push_back(DqEntry::Task(Rc::clone(&frame)));
                            w.stats.deque_peak = w.stats.deque_peak.max(w.deque.len() as u64);
                            w.stack.push(Entry::PopCheck { frame, regime });
                        } else {
                            // No entry to pop; re-enter the loop directly so
                            // the continuation still reaches its sync.
                            w.stack.push(Entry::Loop {
                                frame: Rc::clone(&frame),
                                regime,
                            });
                        }
                        w.stack.push(Entry::Node {
                            node: child,
                            tdepth,
                            regime,
                            out: parent,
                        });
                        Flow::Pay(cost)
                    }
                    None => {
                        let completed = {
                            let mut m = frame.m.borrow_mut();
                            m.outstanding -= 1;
                            (m.outstanding == 0).then_some(m.acc)
                        };
                        if let Some(v) = completed {
                            self.deliver(frame.parent.clone(), v, wid);
                        } else {
                            self.workers[wid].stats.suspensions += 1;
                            sev!(self, wid, Ev::SyncSuspend);
                        }
                        Flow::Free
                    }
                }
            }

            Entry::PopCheck { frame, regime } => {
                let cost = self.cost.pop_ns(self.backend);
                self.workers[wid].stats.time.deque_ns += cost;
                let retained = matches!(
                    self.workers[wid].deque.back(),
                    Some(DqEntry::Task(f)) if Rc::ptr_eq(f, &frame)
                );
                if retained {
                    self.workers[wid].deque.pop_back();
                    self.workers[wid].stats.deque_pops += 1;
                    sev!(self, wid, Ev::Pop);
                    self.workers[wid].stack.push(Entry::Loop { frame, regime });
                } else {
                    self.workers[wid].stats.pop_conflicts += 1;
                    sev!(self, wid, Ev::PopConflict);
                }
                Flow::Pay(cost)
            }

            Entry::SpecialLoop {
                node,
                kid,
                sframe,
                out,
            } => {
                let kids = self.tree.children(node);
                if kid < kids.len() {
                    let child = kids[kid];
                    self.workers[wid].stack.push(Entry::SpecialLoop {
                        node,
                        kid: kid + 1,
                        sframe: Rc::clone(&sframe),
                        out,
                    });
                    sframe.m.borrow_mut().outstanding += 1;
                    let mut cost = self.cost.task_create_ns + 2 * self.cost.deque_op_ns;
                    {
                        let st = &mut self.workers[wid].stats;
                        st.tasks_created += 1;
                        st.deque_pushes += 1;
                        st.time.deque_ns += cost;
                    }
                    sev!(self, wid, Ev::Spawn { depth: 0 });
                    sev!(self, wid, Ev::SpecialPush);
                    cost += self.charge_copy(wid, self.tree.bytes(node));
                    let w = &mut self.workers[wid];
                    w.deque.push_back(DqEntry::Special(Rc::clone(&sframe)));
                    w.stats.deque_peak = w.stats.deque_peak.max(w.deque.len() as u64);
                    w.stack.push(Entry::SpecialPop {
                        sframe: Rc::clone(&sframe),
                    });
                    w.stack.push(Entry::Node {
                        node: child,
                        tdepth: 0,
                        regime: Regime::Fast2,
                        out: Deliver::Frame(sframe),
                    });
                    Flow::Pay(cost)
                } else {
                    // sync_specialtask.
                    let completed = {
                        let mut m = sframe.m.borrow_mut();
                        m.outstanding -= 1;
                        (m.outstanding == 0).then_some(m.acc)
                    };
                    match completed {
                        Some(v) => {
                            self.deliver(out, v, wid);
                            Flow::Free
                        }
                        None => {
                            sev!(self, wid, Ev::SyncSuspend);
                            let w = &mut self.workers[wid];
                            w.stats.suspensions += 1;
                            w.state = WState::Waiting;
                            w.wait_out = Some(out);
                            w.wait_since = self.now;
                            w.epoch += 1;
                            Flow::Block
                        }
                    }
                }
            }

            Entry::SpecialPop { sframe } => {
                let cost = self.cost.pop_ns(self.backend);
                self.workers[wid].stats.time.deque_ns += cost;
                let reclaimed = matches!(
                    self.workers[wid].deque.back(),
                    Some(DqEntry::Special(f)) if Rc::ptr_eq(f, &sframe)
                );
                if reclaimed {
                    self.workers[wid].deque.pop_back();
                    self.workers[wid].stats.deque_pops += 1;
                } else {
                    self.workers[wid].stats.pop_conflicts += 1;
                }
                sev!(self, wid, Ev::SpecialConsume { reclaimed });
                Flow::Pay(cost)
            }
        }
    }

    fn poll(&mut self, wid: usize) -> u64 {
        let w = &mut self.workers[wid];
        w.stats.polls += 1;
        w.stats.time.poll_ns += self.cost.poll_ns;
        self.cost.poll_ns
    }

    /// Close the strategy feedback loops at a `need_task` poll,
    /// mirroring the threaded engine's `strategy_poll`.
    fn strategy_poll(&mut self, wid: usize, pressured: bool) {
        if pressured {
            if let Some(eff) = self.workers[wid].strategy.creation.on_pressure() {
                self.workers[wid].stats.cutoff_adjustments += 1;
                sev!(self, wid, Ev::CutoffTune { eff, up: true });
            }
        } else {
            let occ = self.workers[wid].deque.len();
            if let Some(eff) = self.workers[wid].strategy.creation.on_calm_poll(|| occ) {
                self.workers[wid].stats.cutoff_adjustments += 1;
                sev!(self, wid, Ev::CutoffTune { eff, up: false });
            }
            if let Some(threshold) = self.workers[wid].strategy.threshold.retune_on_quiet() {
                self.workers[wid].max_stolen = threshold;
                self.workers[wid].stats.threshold_adjustments += 1;
                sev!(self, wid, Ev::ThresholdTune { threshold });
            }
        }
    }

    fn take_need_task(&mut self, wid: usize) -> bool {
        let pressured = self.workers[wid].need_task;
        self.strategy_poll(wid, pressured);
        // Only a creation policy that responds to need_task diverts a
        // raised poll into the special transition.
        if pressured && self.workers[wid].strategy.creation.responds_to_need_task() {
            let w = &mut self.workers[wid];
            w.need_task = false;
            w.stolen_num = 0;
            true
        } else {
            false
        }
    }

    fn start_special(&mut self, wid: usize, node: u32, depth: u32, out: Deliver) -> u64 {
        self.workers[wid].stats.special_tasks += 1;
        sev!(self, wid, Ev::SpecialBegin { depth });
        #[cfg(not(feature = "trace"))]
        let _ = depth;
        // Adaptive threshold back-off on the acknowledge, mirroring the
        // threaded engine's special section.
        if let Some(threshold) = self.workers[wid].strategy.threshold.retune_on_ack() {
            self.workers[wid].max_stolen = threshold;
            self.workers[wid].stats.threshold_adjustments += 1;
            sev!(self, wid, Ev::ThresholdTune { threshold });
        }
        let sframe = Frame::new(node, 0, Deliver::Wake(wid));
        self.workers[wid].stack.push(Entry::SpecialLoop {
            node,
            kid: 0,
            sframe,
            out,
        });
        self.cost.task_create_ns
    }

    /// One steal attempt (the worker's stack is empty).
    fn steal_step(&mut self, wid: usize) -> Option<u64> {
        // Help-first: pending local children run before any stealing.
        if let Some(DqEntry::Child { .. }) = self.workers[wid].deque.back() {
            if let Some(DqEntry::Child { node, tdepth, out }) = self.workers[wid].deque.pop_back() {
                sev!(self, wid, Ev::Pop);
                let w = &mut self.workers[wid];
                w.stats.deque_pops += 1;
                w.stack.push(Entry::Node {
                    node,
                    tdepth,
                    regime: Regime::Fast,
                    out,
                });
                return Some(self.cost.deque_op_ns);
            }
        }
        if self.root_done.is_some() {
            self.finish_idle(wid);
            self.workers[wid].state = WState::Done;
            return None;
        }
        if self.workers[wid].idle_since.is_none() {
            self.workers[wid].idle_since = Some(self.now);
        }
        let n = self.workers.len();
        if n == 1 {
            // Nothing to steal from; spin until done.
            return Some(self.cost.steal_backoff_ns);
        }
        let victim = {
            let w = &mut self.workers[wid];
            let mut v = w.rng.below_usize(n - 1);
            if v >= wid {
                v += 1;
            }
            v
        };
        enum Booty {
            Frame(FrameRef),
            Child {
                node: u32,
                tdepth: u32,
                out: Deliver,
            },
        }
        let stolen: Option<Booty> = {
            let vd = &mut self.workers[victim].deque;
            match vd.front() {
                Some(DqEntry::Task(_)) => match vd.pop_front() {
                    Some(DqEntry::Task(f)) => Some(Booty::Frame(f)),
                    _ => unreachable!("just matched"),
                },
                Some(DqEntry::Child { .. }) => match vd.pop_front() {
                    Some(DqEntry::Child { node, tdepth, out }) => {
                        Some(Booty::Child { node, tdepth, out })
                    }
                    _ => unreachable!("just matched"),
                },
                Some(DqEntry::Special(_)) => match vd.get(1) {
                    Some(DqEntry::Task(_)) => {
                        // steal_specialtask: retire the special, take its
                        // child.
                        vd.pop_front();
                        match vd.pop_front() {
                            Some(DqEntry::Task(f)) => Some(Booty::Frame(f)),
                            _ => unreachable!("just matched"),
                        }
                    }
                    _ => None,
                },
                None => None,
            }
        };
        match stolen {
            Some(booty) => {
                {
                    let v = &mut self.workers[victim];
                    v.stolen_num = 0;
                    v.need_task = false;
                }
                self.workers[wid].stats.steals_ok += 1;
                sev!(
                    self,
                    wid,
                    Ev::StealOk {
                        victim: victim as u32
                    }
                );
                if self.workers[wid].fail_streak >= HARD_STEAL_STREAK {
                    if let Some(eff) = self.workers[wid].strategy.creation.on_hard_steal() {
                        self.workers[wid].stats.cutoff_adjustments += 1;
                        sev!(self, wid, Ev::CutoffTune { eff, up: true });
                    }
                }
                self.workers[wid].fail_streak = 0;
                let mut cost = self.cost.steal_ns;
                match booty {
                    // The slow version resumes under fast/check rules.
                    Booty::Frame(frame) => {
                        if self.cos {
                            // Copy-on-steal: the deferred workspace clone
                            // is materialised for the thief now.
                            cost += self.charge_copy(wid, self.tree.bytes(frame.node));
                        }
                        // Steal-half extraction: loot up to `batch − 1`
                        // more plain task entries from the same victim's
                        // top. Looted frames go under the primary frame on
                        // the stack, so the thief runs the primary first,
                        // then the loot newest-first — the threaded
                        // engine's drain order.
                        if !self.workers[wid].strategy.extraction.is_unit() {
                            let batch = self.workers[wid]
                                .strategy
                                .extraction
                                .batch(self.workers[victim].deque.len());
                            let mut looted = 0usize;
                            while looted + 1 < batch {
                                match self.workers[victim].deque.front() {
                                    Some(DqEntry::Task(_)) => {
                                        let Some(DqEntry::Task(f)) =
                                            self.workers[victim].deque.pop_front()
                                        else {
                                            unreachable!("just matched")
                                        };
                                        looted += 1;
                                        cost += self.cost.steal_ns;
                                        self.workers[wid].stats.steals_ok += 1;
                                        sev!(
                                            self,
                                            wid,
                                            Ev::StealOk {
                                                victim: victim as u32
                                            }
                                        );
                                        if self.cos {
                                            cost += self.charge_copy(wid, self.tree.bytes(f.node));
                                        }
                                        self.workers[wid].stack.push(Entry::Loop {
                                            frame: f,
                                            regime: Regime::Fast,
                                        });
                                    }
                                    _ => break,
                                }
                            }
                        }
                        self.workers[wid].stack.push(Entry::Loop {
                            frame,
                            regime: Regime::Fast,
                        });
                    }
                    Booty::Child { node, tdepth, out } => {
                        self.workers[wid].stack.push(Entry::Node {
                            node,
                            tdepth,
                            regime: Regime::Fast,
                            out,
                        });
                    }
                }
                self.finish_idle_at(wid, self.now + cost);
                Some(cost)
            }
            None => {
                {
                    let v = &mut self.workers[victim];
                    v.stolen_num += 1;
                    if v.stolen_num > v.max_stolen {
                        v.need_task = true;
                    }
                }
                self.workers[wid].fail_streak += 1;
                self.workers[wid].stats.steals_failed += 1;
                sev!(
                    self,
                    wid,
                    Ev::StealEmpty {
                        victim: victim as u32
                    }
                );
                Some(self.cost.steal_ns + self.cost.steal_backoff_ns)
            }
        }
    }

    fn finish_idle(&mut self, wid: usize) {
        self.finish_idle_at(wid, self.now);
    }

    fn finish_idle_at(&mut self, wid: usize, end: u64) {
        let w = &mut self.workers[wid];
        if let Some(since) = w.idle_since.take() {
            w.stats.time.steal_wait_ns += end.saturating_sub(since);
        }
    }

    /// Run to completion, returning the leaf count and the report.
    pub(crate) fn run(mut self) -> (u64, RunReport) {
        self.workers[0].stack.push(Entry::Node {
            node: 0,
            tdepth: 0,
            regime: Regime::Fast,
            out: Deliver::Root,
        });
        self.workers[0].stats.tasks_created += 1; // the root task
        sev!(self, 0, Ev::Spawn { depth: 0 });
        let n = self.workers.len();
        for wid in 0..n {
            self.schedule(wid, 0);
        }
        while let Some(Reverse((t, _, wid, epoch))) = self.heap.pop() {
            if self.workers[wid].epoch != epoch || self.workers[wid].state != WState::Active {
                continue; // stale event
            }
            self.now = t;
            if let Some(cost) = self.step(wid) {
                let at = t + cost.max(1);
                self.schedule(wid, at);
            }
        }
        let wall = self.root_done.expect("simulation must complete the root");
        let per_worker: Vec<RunStats> = self.workers.into_iter().map(|w| w.stats).collect();
        (self.root_value, RunReport::from_workers(per_worker, wall))
    }
}
