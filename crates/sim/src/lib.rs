//! A deterministic discrete-event simulator for work-stealing scheduling
//! policies.
//!
//! The evaluation machine of the AdaptiveTC paper (a dual quad-core Xeon)
//! is replaced here by *virtual workers under a virtual clock*: the same
//! seven scheduling policies as `adaptivetc-runtime`, executed over a
//! flattened computation tree ([`SimTree`]) with an explicit [`CostModel`]
//! for node work, task creation, d-e-que operations, workspace copies,
//! polling and steal traffic. Given `(policy, tree, worker count, seed)`
//! the simulated trace — and therefore every reported time — is exactly
//! reproducible.
//!
//! The simulator powers the multi-worker experiments (Figures 4, 5, 7, 9
//! and 10); single-thread overhead experiments (Table 2, Figure 6) run on
//! the real threaded runtime instead.
//!
//! # Examples
//!
//! ```
//! use adaptivetc_core::Config;
//! use adaptivetc_sim::{simulate, CostModel, Policy, SimTree};
//!
//! // A complete binary tree of height 12, uniform work and 64-byte state.
//! let mut children = vec![Vec::new(); (1 << 13) - 1];
//! for i in 0..(1 << 12) - 1 {
//!     children[i] = vec![2 * i as u32 + 1, 2 * i as u32 + 2];
//! }
//! let tree = SimTree::from_lists(children, 1, 64);
//!
//! let one = simulate(&tree, Policy::AdaptiveTc, &Config::new(1), CostModel::calibrated());
//! let four = simulate(&tree, Policy::AdaptiveTc, &Config::new(4), CostModel::calibrated());
//! assert_eq!(one.leaves, tree.leaf_count()); // every policy visits every leaf
//! assert!(four.wall_ns < one.wall_ns);       // parallelism helps in virtual time
//! ```

#![warn(missing_docs)]

mod cost;
mod engine;
mod tascell;
mod trace;
mod tree;

pub use cost::CostModel;
pub use engine::Policy;
pub use tree::SimTree;

use adaptivetc_core::{Config, RunReport};

/// The outcome of a simulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimOutcome {
    /// Leaves visited (must equal `tree.leaf_count()`; the simulator's
    /// correctness check).
    pub leaves: u64,
    /// Virtual wall-clock time at root completion.
    pub wall_ns: u64,
    /// Aggregated and per-worker statistics (times are exact virtual
    /// durations).
    pub report: RunReport,
}

/// Simulate a policy over a flattened tree.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero workers).
pub fn simulate(tree: &SimTree, policy: Policy, cfg: &Config, cost: CostModel) -> SimOutcome {
    #[cfg(feature = "trace")]
    {
        simulate_traced(tree, policy, cfg, cost).0
    }
    #[cfg(not(feature = "trace"))]
    {
        sim_inner(tree, policy, cfg, cost, ())
    }
}

/// Simulate a policy and also return the event trace, stamped with the
/// virtual clock, when `cfg.trace` is set.
///
/// The deque-based policies emit the same event schema as the threaded
/// runtime (see `adaptivetc-trace`), so the two streams can be diffed
/// over their shared subset with `TraceDiff`. Tascell runs in its own
/// interpreter and is not instrumented: it always yields `None`, as does
/// any run with `cfg.trace` off.
///
/// # Panics
///
/// Panics if the configuration is invalid (zero workers, undersized
/// trace ring).
#[cfg(feature = "trace")]
pub fn simulate_traced(
    tree: &SimTree,
    policy: Policy,
    cfg: &Config,
    cost: CostModel,
) -> (SimOutcome, Option<adaptivetc_trace::Trace>) {
    cfg.validate().expect("invalid simulation configuration");
    // The simulator honours the category filter but never samples: its
    // streams stay exhaustive so real-vs-sim diffs remain exact.
    let collector = (cfg.trace && policy != Policy::Tascell).then(|| {
        adaptivetc_trace::TraceCollector::with_options(
            cfg.threads,
            cfg.trace_capacity,
            cfg.trace_filter,
            1,
        )
    });
    let out = sim_inner(tree, policy, cfg, cost, collector.as_ref());
    (out, collector.map(|c| c.finish()))
}

fn sim_inner(
    tree: &SimTree,
    policy: Policy,
    cfg: &Config,
    cost: CostModel,
    tracer: trace::SimTracer<'_>,
) -> SimOutcome {
    cfg.validate().expect("invalid simulation configuration");
    let (leaves, report) = match policy {
        Policy::Tascell => tascell::TascellSim::new(tree, cfg, cost).run(),
        _ => engine::Sim::new(tree, cfg, cost, policy, tracer).run(),
    };
    SimOutcome {
        leaves,
        wall_ns: report.wall_ns,
        report,
    }
}

/// The serial baseline in virtual time: pure node work, no scheduling
/// overhead (the paper's "sequential C program").
pub fn serial_wall_ns(tree: &SimTree, cost: &CostModel) -> u64 {
    cost.work_ns(tree.total_work())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn binary_tree(height: u32) -> SimTree {
        let n = (1usize << (height + 1)) - 1;
        let interior = (1usize << height) - 1;
        let mut children = vec![Vec::new(); n];
        for (i, c) in children.iter_mut().enumerate().take(interior) {
            *c = vec![2 * i as u32 + 1, 2 * i as u32 + 2];
        }
        SimTree::from_lists(children, 1, 64)
    }

    /// A deep spine with a bushy binary subtree hanging off every spine
    /// node: plenty of parallelism, but none of it visible above a shallow
    /// cut-off.
    fn spine_tree(len: usize, bush_height: u32) -> SimTree {
        let mut children: Vec<Vec<u32>> = vec![Vec::new(); len + 1];
        for (i, kids) in children.iter_mut().enumerate().take(len) {
            kids.push(i as u32 + 1); // the spine
        }
        fn bush(children: &mut Vec<Vec<u32>>, levels: u32) -> u32 {
            let id = children.len() as u32;
            children.push(Vec::new());
            if levels > 0 {
                let a = bush(children, levels - 1);
                let b = bush(children, levels - 1);
                children[id as usize] = vec![a, b];
            }
            id
        }
        for i in 0..len {
            let b = bush(&mut children, bush_height);
            children[i].push(b);
        }
        SimTree::from_lists(children, 1, 64)
    }

    fn all_policies() -> Vec<Policy> {
        vec![
            Policy::Cilk,
            Policy::CilkSynched,
            Policy::CutoffProgrammer(3),
            Policy::CutoffLibrary,
            Policy::AdaptiveTc,
            Policy::Tascell,
            Policy::HelpFirst,
        ]
    }

    #[test]
    fn every_policy_visits_every_leaf() {
        let tree = binary_tree(10);
        for policy in all_policies() {
            for threads in [1, 2, 4, 8] {
                let out = simulate(
                    &tree,
                    policy,
                    &Config::new(threads),
                    CostModel::calibrated(),
                );
                assert_eq!(
                    out.leaves,
                    tree.leaf_count(),
                    "{} with {threads} workers lost work",
                    policy.name()
                );
            }
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let tree = binary_tree(9);
        for policy in all_policies() {
            let a = simulate(
                &tree,
                policy,
                &Config::new(4).seed(9),
                CostModel::calibrated(),
            );
            let b = simulate(
                &tree,
                policy,
                &Config::new(4).seed(9),
                CostModel::calibrated(),
            );
            assert_eq!(a.wall_ns, b.wall_ns, "{}", policy.name());
            assert_eq!(a.report, b.report, "{}", policy.name());
        }
    }

    #[test]
    fn parallelism_reduces_virtual_time() {
        let tree = binary_tree(12);
        for policy in [Policy::Cilk, Policy::AdaptiveTc, Policy::Tascell] {
            let t1 = simulate(&tree, policy, &Config::new(1), CostModel::calibrated()).wall_ns;
            let t8 = simulate(&tree, policy, &Config::new(8), CostModel::calibrated()).wall_ns;
            assert!(
                t8 * 2 < t1,
                "{}: t1={t1} t8={t8} — expected at least 2x speedup",
                policy.name()
            );
        }
    }

    #[test]
    fn adaptive_single_worker_beats_cilk_single_worker() {
        // With one worker, AdaptiveTC degenerates to fake tasks (no copies,
        // no deque traffic beyond the cut-off frontier) while Cilk pays a
        // task + copy per node.
        let tree = binary_tree(12);
        let cilk = simulate(
            &tree,
            Policy::Cilk,
            &Config::new(1),
            CostModel::calibrated(),
        );
        let adpt = simulate(
            &tree,
            Policy::AdaptiveTc,
            &Config::new(1),
            CostModel::calibrated(),
        );
        assert!(adpt.wall_ns < cilk.wall_ns);
        assert!(adpt.report.stats.copies * 100 < cilk.report.stats.copies);
        assert!(adpt.report.stats.tasks_created * 100 < cilk.report.stats.tasks_created);
    }

    #[test]
    fn adaptive_creates_specials_under_load() {
        let tree = binary_tree(13);
        let out = simulate(
            &tree,
            Policy::AdaptiveTc,
            &Config::new(8).max_stolen_num(4),
            CostModel::calibrated(),
        );
        assert!(
            out.report.stats.special_tasks > 0,
            "8 hungry workers must trigger need_task transitions"
        );
    }

    #[test]
    fn cutoff_starves_on_a_spine() {
        // A deep spine below the cut-off leaves fixed-cut-off schedulers
        // sequential, while AdaptiveTC re-opens task creation.
        let tree = spine_tree(300, 6);
        let cfg = Config::new(4).max_stolen_num(2);
        let cut = simulate(
            &tree,
            Policy::CutoffProgrammer(2),
            &cfg,
            CostModel::calibrated(),
        );
        let adpt = simulate(&tree, Policy::AdaptiveTc, &cfg, CostModel::calibrated());
        assert!(
            adpt.wall_ns < cut.wall_ns,
            "adaptive={} cutoff={}",
            adpt.wall_ns,
            cut.wall_ns
        );
    }

    #[test]
    fn help_first_deque_grows_with_breadth_not_depth() {
        // Work-first deque occupancy tracks spawn depth; help-first tracks
        // sibling breadth. On a wide flat tree the contrast is stark.
        let wide = SimTree::from_lists(
            std::iter::once((1..=4000u32).collect::<Vec<_>>())
                .chain((0..4000).map(|_| Vec::new()))
                .collect(),
            1,
            16,
        );
        let cfg = Config::new(2);
        let wf = simulate(&wide, Policy::Cilk, &cfg, CostModel::calibrated());
        let hf = simulate(&wide, Policy::HelpFirst, &cfg, CostModel::calibrated());
        assert_eq!(hf.leaves, wide.leaf_count());
        assert!(
            hf.report.stats.deque_peak > 100 * wf.report.stats.deque_peak.max(1),
            "help-first peak {} vs work-first {}",
            hf.report.stats.deque_peak,
            wf.report.stats.deque_peak
        );
    }

    #[test]
    fn tascell_records_wait_children() {
        let tree = binary_tree(12);
        let out = simulate(
            &tree,
            Policy::Tascell,
            &Config::new(8),
            CostModel::calibrated(),
        );
        assert!(out.report.stats.steal_responses > 0);
        assert!(
            out.report.stats.time.wait_children_ns > 0,
            "victims must wait for handed-out children"
        );
    }

    /// Every simulated event stream must satisfy the same trace↔stats
    /// count identities the threaded runtime's differential validator
    /// enforces — per worker and in aggregate.
    #[cfg(feature = "trace")]
    #[test]
    fn traced_counts_match_stats() {
        let tree = binary_tree(10);
        let cfg = Config::new(4).trace(true).max_stolen_num(2).seed(7);
        for policy in [
            Policy::Cilk,
            Policy::CilkSynched,
            Policy::CutoffProgrammer(3),
            Policy::CutoffLibrary,
            Policy::AdaptiveTc,
            Policy::HelpFirst,
        ] {
            let (out, trace) = simulate_traced(&tree, policy, &cfg, CostModel::calibrated());
            let trace = trace.expect("tracing enabled for deque-based policies");
            assert!(!trace.is_empty(), "{}", policy.name());
            let mismatches = adaptivetc_trace::validate(&trace, &out.report);
            assert!(mismatches.is_empty(), "{}: {:?}", policy.name(), mismatches);
        }
    }

    /// Tracing is opt-in (`Config::trace`) and never instruments Tascell.
    #[cfg(feature = "trace")]
    #[test]
    fn tracing_is_opt_in() {
        let tree = binary_tree(6);
        let (_, off) = simulate_traced(
            &tree,
            Policy::AdaptiveTc,
            &Config::new(2),
            CostModel::calibrated(),
        );
        assert!(off.is_none());
        let (_, tascell) = simulate_traced(
            &tree,
            Policy::Tascell,
            &Config::new(2).trace(true),
            CostModel::calibrated(),
        );
        assert!(tascell.is_none());
    }

    #[test]
    fn fence_free_backend_cheapens_owner_pops() {
        // Same tree, same policy, same seed: switching the simulated
        // backend to fence-free refunds the pop-fence share on every
        // owner pop, shrinking deque time (and the single-thread wall,
        // where deque traffic is pure overhead).
        use adaptivetc_core::DequeBackend;
        let tree = binary_tree(10);
        let cost = CostModel::calibrated();
        let the = simulate(&tree, Policy::Cilk, &Config::new(1), cost);
        let ff = simulate(
            &tree,
            Policy::Cilk,
            &Config::new(1).backend(DequeBackend::FenceFree),
            cost,
        );
        assert_eq!(ff.leaves, tree.leaf_count());
        assert!(
            ff.report.stats.time.deque_ns < the.report.stats.time.deque_ns,
            "ff={} the={}",
            ff.report.stats.time.deque_ns,
            the.report.stats.time.deque_ns
        );
        assert!(ff.wall_ns < the.wall_ns);
        assert_eq!(ff.report.stats.deque_pops, the.report.stats.deque_pops);
    }

    #[test]
    fn serial_wall_is_total_work() {
        let tree = binary_tree(5);
        let cost = CostModel::calibrated();
        assert_eq!(
            serial_wall_ns(&tree, &cost),
            tree.total_work() * cost.node_ns
        );
    }

    #[test]
    fn single_node_tree() {
        let tree = SimTree::from_lists(vec![vec![]], 1, 0);
        for policy in all_policies() {
            let out = simulate(&tree, policy, &Config::new(2), CostModel::calibrated());
            assert_eq!(out.leaves, 1, "{}", policy.name());
        }
    }
}

#[cfg(test)]
mod time_identity_tests {
    use super::*;
    use adaptivetc_core::Config;

    /// Per-policy: the sum of all time categories over all workers must not
    /// exceed workers × wall (each worker's clock is exclusive), and busy
    /// time must equal total work exactly.
    #[test]
    fn breakdown_fits_inside_the_wall() {
        let mut children = vec![Vec::new(); (1 << 13) - 1];
        for (i, c) in children.iter_mut().enumerate().take((1 << 12) - 1) {
            *c = vec![2 * i as u32 + 1, 2 * i as u32 + 2];
        }
        let tree = SimTree::from_lists(children, 2, 128);
        let cost = CostModel::calibrated();
        for policy in [
            Policy::Cilk,
            Policy::CilkSynched,
            Policy::AdaptiveTc,
            Policy::Tascell,
            Policy::CutoffLibrary,
        ] {
            for threads in [1usize, 4, 8] {
                let out = simulate(&tree, policy, &Config::new(threads), cost);
                let t = &out.report.stats.time;
                assert_eq!(
                    t.busy_ns,
                    cost.work_ns(tree.total_work()),
                    "{}: busy != total work",
                    policy.name()
                );
                let accounted = t.total_ns();
                let budget = out.wall_ns * threads as u64 + out.wall_ns; // slack: final idle tails
                assert!(
                    accounted <= budget,
                    "{} at {threads}: accounted {accounted} exceeds {budget}",
                    policy.name()
                );
            }
        }
    }
}
