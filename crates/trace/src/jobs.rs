//! Interleaved run-epoch handling for job-server traces.
//!
//! A one-shot run drains one buffer per worker and timestamp zero is the
//! single run epoch, so [`validate`](crate::validate::validate) can compare
//! the whole trace against one `RunReport`. A `JobServer` breaks that
//! assumption: one collector spans the server's lifetime, every pool worker
//! interleaves events from many jobs, and a job's "workers" are *job slots*
//! that different pool workers may fill at different times. The bridging
//! invariant is the [`EventKind::JobBegin`]/[`EventKind::JobEnd`] bracket
//! each participant emits around its engine entry: everything inside a
//! bracket belongs to exactly one `(job, slot)` pair.
//!
//! [`Trace::split_jobs`] re-keys a server trace by those brackets into one
//! sub-trace per job, indexed by job slot, which restores the one-epoch
//! world: each sub-trace can be fed to `validate`, `TraceCounts` or
//! [`TraceDiff`](crate::diff::TraceDiff) unchanged.
//! [`validate_concurrent`] packages the common case of checking every job's
//! sub-trace against its own `RunReport`.

use std::collections::BTreeMap;

use crate::collector::{Trace, WorkerTrace};
use crate::event::{Event, EventKind};
use crate::validate::{validate, Mismatch};
use adaptivetc_core::stats::RunReport;

/// Per-(job, slot) accumulator while scanning one pool worker's stream.
#[derive(Default)]
struct SlotAcc {
    events: Vec<Event>,
    dropped: u64,
}

impl Trace {
    /// Split a job-server trace into one sub-trace per job.
    ///
    /// Each pool worker's stream is scanned for `JobBegin { job, slot }` /
    /// `JobEnd { job }` brackets; the events inside are credited to job
    /// slot `slot` of job `job` (the markers themselves are consumed).
    /// Events outside any bracket — there are none in a healthy server
    /// trace — are discarded. A slot serviced by several pool workers in
    /// turn (lead, then a joiner, then another) has its segments merged
    /// and ordered by timestamp, matching how the server merges those
    /// participants' `RunStats` into the same per-slot entry.
    ///
    /// Ring overflow is poisoning, not per-event attributable: the rings
    /// drop *oldest*, so an overflow can swallow a `JobBegin` marker and
    /// orphan the events after it (they are discarded). A pool worker with
    /// `dropped > 0` therefore marks every job mentioned by any surviving
    /// marker in its stream as dropped, so downstream validation of those
    /// jobs fails loudly instead of comparing against silently incomplete
    /// streams.
    pub fn split_jobs(&self) -> BTreeMap<u32, Trace> {
        let mut jobs: BTreeMap<u32, BTreeMap<u16, SlotAcc>> = BTreeMap::new();
        let mut poisoned: Vec<(u32, u64)> = Vec::new();
        for w in &self.workers {
            let mut current: Option<(u32, u16)> = None;
            let mut touched: Vec<u32> = Vec::new();
            for ev in &w.events {
                match ev.kind {
                    EventKind::JobBegin { job, slot } => {
                        current = Some((job, slot));
                        if !touched.contains(&job) {
                            touched.push(job);
                        }
                    }
                    EventKind::JobEnd { job } => {
                        current = None;
                        if !touched.contains(&job) {
                            touched.push(job);
                        }
                    }
                    _ => {
                        if let Some((job, slot)) = current {
                            jobs.entry(job)
                                .or_default()
                                .entry(slot)
                                .or_default()
                                .events
                                .push(*ev);
                        }
                    }
                }
            }
            if w.dropped > 0 {
                poisoned.extend(touched.into_iter().map(|job| (job, w.dropped)));
            }
        }
        for (job, dropped) in poisoned {
            let slots = jobs.entry(job).or_default();
            if slots.is_empty() {
                slots.insert(0, SlotAcc::default());
            }
            for acc in slots.values_mut() {
                acc.dropped += dropped;
            }
        }
        jobs.into_iter()
            .map(|(job, slots)| {
                let max_slot = slots.keys().next_back().copied().unwrap_or(0);
                let mut workers: Vec<WorkerTrace> = (0..=max_slot)
                    .map(|slot| WorkerTrace {
                        worker: slot as usize,
                        events: Vec::new(),
                        dropped: 0,
                    })
                    .collect();
                for (slot, mut acc) in slots {
                    acc.events.sort_by_key(|e| e.ts);
                    workers[slot as usize].events = acc.events;
                    workers[slot as usize].dropped = acc.dropped;
                }
                (
                    job,
                    Trace {
                        workers,
                        filter: self.filter,
                        sample: self.sample,
                        clock_backend: self.clock_backend,
                    },
                )
            })
            .collect()
    }
}

/// One discrepancy found by [`validate_concurrent`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JobMismatch {
    /// Which job disagreed.
    pub job: u32,
    /// The underlying trace/stats mismatch (its `worker` field is the
    /// job-local slot).
    pub mismatch: Mismatch,
}

impl std::fmt::Display for JobMismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "job {}: {}", self.job, self.mismatch)
    }
}

/// Validate a server trace carrying interleaved run-epochs against each
/// job's own report.
///
/// Splits `trace` by job and runs [`validate`] per job. A job whose
/// sub-trace has fewer slots than `report.per_worker` (a slot no joiner
/// ever filled emits no events) is padded with empty streams so the
/// per-slot comparison still applies — an unfilled slot must then report
/// all-zero stats. A job listed in `jobs` but absent from the trace is
/// compared against an empty trace: every non-zero counter mismatches.
pub fn validate_concurrent(trace: &Trace, jobs: &[(u32, &RunReport)]) -> Vec<JobMismatch> {
    let split = trace.split_jobs();
    let mut out = Vec::new();
    for (job, report) in jobs {
        let mut sub = split
            .get(job)
            .cloned()
            .unwrap_or_else(|| Trace::from_workers(Vec::new()));
        while sub.workers.len() < report.per_worker.len() {
            sub.workers.push(WorkerTrace {
                worker: sub.workers.len(),
                events: Vec::new(),
                dropped: 0,
            });
        }
        out.extend(validate(&sub, report).into_iter().map(|m| JobMismatch {
            job: *job,
            mismatch: m,
        }));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use adaptivetc_core::stats::RunStats;

    /// Two jobs interleaved on two pool workers: job 1 led by worker 0,
    /// job 2 led by worker 1, and worker 1 later joins job 1 at slot 1.
    fn interleaved() -> Trace {
        let c = TraceCollector::new(2, 256);
        c.emit_at(0, 1, EventKind::JobBegin { job: 1, slot: 0 });
        c.emit_at(1, 2, EventKind::JobBegin { job: 2, slot: 0 });
        c.emit_at(0, 3, EventKind::Spawn { depth: 0 });
        c.emit_at(1, 4, EventKind::Spawn { depth: 0 });
        c.emit_at(1, 5, EventKind::Push);
        c.emit_at(1, 6, EventKind::Pop);
        c.emit_at(1, 7, EventKind::JobEnd { job: 2 });
        c.emit_at(1, 8, EventKind::JobBegin { job: 1, slot: 1 });
        c.emit_at(1, 9, EventKind::StealOk { victim: 0 });
        c.emit_at(0, 10, EventKind::Push);
        c.emit_at(1, 11, EventKind::JobEnd { job: 1 });
        c.emit_at(0, 12, EventKind::JobEnd { job: 1 });
        c.finish()
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn split_rekeys_by_job_and_slot() {
        let split = interleaved().split_jobs();
        assert_eq!(split.keys().copied().collect::<Vec<_>>(), vec![1, 2]);
        let j1 = &split[&1];
        assert_eq!(j1.workers.len(), 2);
        assert_eq!(
            j1.workers[0]
                .events
                .iter()
                .map(|e| e.kind.name())
                .collect::<Vec<_>>(),
            vec!["spawn", "push"]
        );
        assert_eq!(
            j1.workers[1]
                .events
                .iter()
                .map(|e| e.kind.name())
                .collect::<Vec<_>>(),
            vec!["steal_ok"]
        );
        let j2 = &split[&2];
        assert_eq!(j2.workers.len(), 1);
        assert_eq!(j2.workers[0].events.len(), 3);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn validate_concurrent_checks_each_job_against_its_own_report() {
        let trace = interleaved();
        let r1 = RunReport::from_workers(
            vec![
                RunStats {
                    tasks_created: 1,
                    deque_pushes: 1,
                    ..Default::default()
                },
                RunStats {
                    steals_ok: 1,
                    ..Default::default()
                },
            ],
            0,
        );
        let r2 = RunReport::from_workers(
            vec![RunStats {
                tasks_created: 1,
                deque_pushes: 1,
                deque_pops: 1,
                ..Default::default()
            }],
            0,
        );
        let mismatches = validate_concurrent(&trace, &[(1, &r1), (2, &r2)]);
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn cross_job_leak_is_detected() {
        let trace = interleaved();
        // Claim job 2 performed job 1's steal: must mismatch.
        let r2 = RunReport::from_workers(
            vec![RunStats {
                tasks_created: 1,
                deque_pushes: 1,
                deque_pops: 1,
                steals_ok: 1,
                ..Default::default()
            }],
            0,
        );
        let mismatches = validate_concurrent(&trace, &[(2, &r2)]);
        assert!(
            mismatches
                .iter()
                .any(|m| m.job == 2 && m.mismatch.counter == "steals_ok"),
            "{mismatches:?}"
        );
        assert!(format!("{}", mismatches[0]).contains("job 2"));
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn unfilled_slot_is_padded_with_an_empty_stream() {
        let c = TraceCollector::new(1, 64);
        c.emit_at(0, 1, EventKind::JobBegin { job: 7, slot: 0 });
        c.emit_at(0, 2, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 3, EventKind::JobEnd { job: 7 });
        let report = RunReport::from_workers(
            vec![
                RunStats {
                    tasks_created: 1,
                    ..Default::default()
                },
                RunStats::default(), // slot 1 never joined
            ],
            0,
        );
        let mismatches = validate_concurrent(&c.finish(), &[(7, &report)]);
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn dropped_events_poison_contributing_slots() {
        // Drop-oldest overflow swallows the JobBegin marker; the surviving
        // JobEnd must still get job 3 poisoned.
        let c = TraceCollector::new(1, 16);
        c.emit_at(0, 1, EventKind::JobBegin { job: 3, slot: 0 });
        for i in 0..64 {
            c.emit_at(0, 2 + i, EventKind::Push);
        }
        c.emit_at(0, 99, EventKind::JobEnd { job: 3 });
        let trace = c.finish();
        assert!(trace.workers[0].dropped > 0);
        let split = trace.split_jobs();
        assert!(split[&3].workers.iter().any(|w| w.dropped > 0));
        // And validation of the poisoned job reports the pseudo-counter.
        let report = RunReport::from_workers(vec![RunStats::default()], 0);
        let mismatches = validate_concurrent(&trace, &[(3, &report)]);
        assert!(
            mismatches
                .iter()
                .any(|m| m.mismatch.counter == "dropped_events"),
            "{mismatches:?}"
        );
    }
}
