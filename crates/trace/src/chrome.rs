//! Chrome Trace Event Format export.
//!
//! Produces a JSON object with a `traceEvents` array loadable by
//! `chrome://tracing` and by Perfetto's legacy-trace importer. We use:
//!
//! * `M` metadata events to name the process and one thread per worker,
//! * `B`/`E` duration events for the long-lived worker phases — special
//!   sections (`SpecialBegin`/`SpecialEnd`), stolen-continuation
//!   execution (`Fsm idle→slow` / `slow→idle`) and sync waits
//!   (`SyncSuspend`/`SyncResume`) — which render as nested bars,
//! * `i` instant events (thread scope) for everything point-like: deque
//!   traffic, steal probes, FSM version switches, `need_task` signalling
//!   and the workspace handshake.
//!
//! Timestamps are microseconds (the format's unit) as fractional values,
//! so nanosecond resolution survives. The writer is hand-rolled — every
//! emitted string is a compile-time literal or a number, so no JSON
//! escaping is needed and the exporter stays dependency-free.

use crate::collector::Trace;
use crate::event::{EventKind, FsmState};
use std::fmt::Write as _;

fn us(ts: u64) -> f64 {
    ts as f64 / 1000.0
}

/// Append one `"key":value` argument pair.
fn push_arg(out: &mut String, key: &str, value: u64) {
    let _ = write!(out, "\"{key}\":{value}");
}

/// Render `trace` as a Chrome Trace Event Format JSON string.
pub fn to_chrome_json(trace: &Trace) -> String {
    let mut out = String::with_capacity(trace.len() * 96 + 1024);
    out.push_str("{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n");
    out.push_str(
        "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\
         \"args\":{\"name\":\"adaptivetc\"}}",
    );
    for w in &trace.workers {
        let _ = write!(
            out,
            ",\n{{\"ph\":\"M\",\"pid\":1,\"tid\":{tid},\"name\":\"thread_name\",\
             \"args\":{{\"name\":\"worker {id}\"}}}}",
            tid = w.worker,
            id = w.worker
        );
    }
    for w in &trace.workers {
        let tid = w.worker;
        for ev in &w.events {
            // (phase, name, optional args) per event.
            let (ph, name): (&str, &str) = match ev.kind {
                EventKind::SpecialBegin { .. } => ("B", "special section"),
                EventKind::SpecialEnd => ("E", "special section"),
                EventKind::SyncSuspend => ("B", "sync wait"),
                EventKind::SyncResume => ("E", "sync wait"),
                EventKind::Fsm {
                    from: FsmState::Idle,
                    to: FsmState::Slow,
                    ..
                } => ("B", "slow (stolen)"),
                EventKind::Fsm {
                    from: FsmState::Slow,
                    to: FsmState::Idle,
                    ..
                } => ("E", "slow (stolen)"),
                other => ("i", other.name()),
            };
            let _ = write!(
                out,
                ",\n{{\"ph\":\"{ph}\",\"pid\":1,\"tid\":{tid},\"ts\":{ts},\"name\":\"{name}\"",
                ts = us(ev.ts)
            );
            if ph == "i" {
                out.push_str(",\"s\":\"t\"");
            }
            // Arguments for the kinds that carry them.
            let mut args = String::new();
            match ev.kind {
                EventKind::Spawn { depth }
                | EventKind::FakeTask { depth }
                | EventKind::SpecialBegin { depth } => push_arg(&mut args, "depth", depth as u64),
                EventKind::StealAttempt { victim }
                | EventKind::StealOk { victim }
                | EventKind::StealEmpty { victim }
                | EventKind::StealDup { victim }
                | EventKind::NeedTaskSignal { victim } => {
                    push_arg(&mut args, "victim", victim as u64)
                }
                EventKind::WsRequest { owner } => push_arg(&mut args, "owner", owner as u64),
                EventKind::SpecialConsume { reclaimed } => {
                    push_arg(&mut args, "reclaimed", reclaimed as u64)
                }
                EventKind::Fsm { from, to, depth } => {
                    let _ = write!(
                        args,
                        "\"from\":\"{}\",\"to\":\"{}\",\"depth\":{}",
                        from.name(),
                        to.name(),
                        depth
                    );
                }
                _ => {}
            }
            if !args.is_empty() {
                let _ = write!(out, ",\"args\":{{{args}}}");
            }
            out.push('}');
        }
    }
    out.push_str("\n]}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::event::{EventKind, FsmState};

    fn sample_trace() -> Trace {
        let c = TraceCollector::new(2, 256);
        c.emit_at(0, 100, EventKind::Spawn { depth: 1 });
        c.emit_at(0, 200, EventKind::Push);
        c.emit_at(
            0,
            300,
            EventKind::Fsm {
                from: FsmState::Fast,
                to: FsmState::Check,
                depth: 3,
            },
        );
        c.emit_at(0, 400, EventKind::SpecialBegin { depth: 3 });
        c.emit_at(0, 900, EventKind::SpecialEnd);
        c.emit_at(1, 150, EventKind::StealAttempt { victim: 0 });
        c.emit_at(1, 250, EventKind::StealOk { victim: 0 });
        c.emit_at(
            1,
            260,
            EventKind::Fsm {
                from: FsmState::Idle,
                to: FsmState::Slow,
                depth: 0,
            },
        );
        c.emit_at(
            1,
            800,
            EventKind::Fsm {
                from: FsmState::Slow,
                to: FsmState::Idle,
                depth: 0,
            },
        );
        c.finish()
    }

    /// A minimal structural JSON scan: balanced braces/brackets outside
    /// strings, and strings are all terminated. Enough to catch writer
    /// bugs without a JSON dependency.
    fn check_json_shape(s: &str) {
        let mut depth_obj = 0i64;
        let mut depth_arr = 0i64;
        let mut in_str = false;
        let mut prev = ' ';
        for ch in s.chars() {
            if in_str {
                if ch == '"' && prev != '\\' {
                    in_str = false;
                }
            } else {
                match ch {
                    '"' => in_str = true,
                    '{' => depth_obj += 1,
                    '}' => depth_obj -= 1,
                    '[' => depth_arr += 1,
                    ']' => depth_arr -= 1,
                    _ => {}
                }
                assert!(depth_obj >= 0 && depth_arr >= 0, "negative nesting");
            }
            prev = ch;
        }
        assert!(!in_str, "unterminated string");
        assert_eq!(depth_obj, 0, "unbalanced braces");
        assert_eq!(depth_arr, 0, "unbalanced brackets");
    }

    #[test]
    fn export_is_structurally_valid_json() {
        let json = to_chrome_json(&sample_trace());
        check_json_shape(&json);
        assert!(json.starts_with("{\"displayTimeUnit\":\"ns\",\"traceEvents\":["));
        assert!(json.trim_end().ends_with("]}"));
    }

    #[test]
    fn export_contains_expected_records() {
        let json = to_chrome_json(&sample_trace());
        // Thread metadata for both workers.
        assert!(json.contains("\"name\":\"worker 0\""));
        assert!(json.contains("\"name\":\"worker 1\""));
        // Span pairs.
        assert!(json
            .contains("\"ph\":\"B\",\"pid\":1,\"tid\":0,\"ts\":0.4,\"name\":\"special section\""));
        assert!(json
            .contains("\"ph\":\"E\",\"pid\":1,\"tid\":0,\"ts\":0.9,\"name\":\"special section\""));
        assert!(json.contains("\"name\":\"slow (stolen)\""));
        // Instants carry args.
        assert!(json.contains("\"name\":\"steal_ok\",\"s\":\"t\",\"args\":{\"victim\":0}"));
        assert!(json.contains("\"from\":\"fast\",\"to\":\"check\",\"depth\":3"));
    }

    #[test]
    fn event_count_matches() {
        let trace = sample_trace();
        let json = to_chrome_json(&trace);
        // metadata: 1 process + 2 threads; then one record per event.
        let records = json.matches("\"ph\":\"").count();
        assert_eq!(records, 3 + trace.len());
    }
}
