//! Lock-free event tracing for the AdaptiveTC runtime.
//!
//! The paper's argument is about *when* things happen — when a worker
//! demotes spawns to fake tasks, when `need_task` pressure triggers a
//! special transition, when thieves actually get work — but `RunStats`
//! only reports end-of-run totals. This crate adds the missing time
//! dimension:
//!
//! * [`event`] — the compact 16-byte event schema shared by the threaded
//!   runtime and the discrete-event simulator, plus the legal FSM edge
//!   set derived from the paper's version walk.
//! * [`ring`] — per-worker SPSC rings: wait-free producer, drop-oldest
//!   overflow with a dropped counter, quiescent drain.
//! * [`clock`] — run-epoch monotonic timestamps (the sim stamps virtual
//!   time instead).
//! * [`collector`] — one ring per worker, per-worker [`WorkerHandle`]s,
//!   drained into an immutable [`Trace`].
//! * [`chrome`] — `chrome://tracing` / Perfetto JSON export.
//! * [`analysis`] — steal-provenance tree, per-state dwell times,
//!   steal-latency and deque-occupancy histograms, aggregate counts.
//! * [`validate`] — the differential oracle: trace-derived counts must
//!   equal `RunStats` exactly, per worker and in aggregate.
//! * [`diff`] — real-vs-simulated stream comparison over the shared
//!   schema subset.
//!
//! The runtime integration lives in `adaptivetc-runtime` behind its
//! `trace` cargo feature and the `Config::trace` runtime flag; with the
//! feature off this crate is not even compiled.

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod clock;
pub mod collector;
pub mod diff;
pub mod event;
pub mod jobs;
pub mod ring;
pub(crate) mod sync;
pub mod validate;

pub use analysis::{
    deque_occupancy, dwell_times, steal_latency, Dwell, Histogram, StealTree, TraceCounts,
};
pub use chrome::to_chrome_json;
pub use clock::TraceClock;
pub use collector::{Trace, TraceCollector, WorkerHandle, WorkerTrace};
pub use diff::TraceDiff;
pub use event::{legal_fsm_edge, Event, EventKind, FsmState, RawEvent};
pub use jobs::{validate_concurrent, JobMismatch};
pub use validate::{assert_valid, validate, Mismatch};
