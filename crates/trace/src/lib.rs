//! Lock-free event tracing for the AdaptiveTC runtime.
//!
//! The paper's argument is about *when* things happen — when a worker
//! demotes spawns to fake tasks, when `need_task` pressure triggers a
//! special transition, when thieves actually get work — but `RunStats`
//! only reports end-of-run totals. This crate adds the missing time
//! dimension:
//!
//! * [`event`] — the compact 16-byte event schema shared by the threaded
//!   runtime and the discrete-event simulator, plus the legal FSM edge
//!   set derived from the paper's version walk.
//! * [`ring`] — per-worker SPSC rings: block-claim producer protocol
//!   (plain-store hot path, one `Release` publication per block),
//!   drop-oldest overflow with derived accounting, quiescent drain.
//! * [`clock`] — run-epoch monotonic timestamps: calibrated invariant-TSC
//!   reads on x86_64, `Instant` elsewhere (the sim stamps virtual time
//!   instead).
//! * [`filter`] — event categories and the compile-time + runtime
//!   category filter mask.
//! * [`collector`] — one ring per worker, per-worker [`WorkerHandle`]s
//!   with mask-gated, optionally sampled emission, drained into an
//!   immutable [`Trace`].
//! * [`chrome`] — `chrome://tracing` / Perfetto JSON export.
//! * [`analysis`] — steal-provenance tree, per-state dwell times,
//!   steal-latency and deque-occupancy histograms, steal-latency and
//!   need_task→delivery response-time CDFs, aggregate counts.
//! * [`validate`] — the differential oracle: trace-derived counts must
//!   equal `RunStats` exactly, per worker and in aggregate, for every
//!   category the trace recorded unsampled.
//! * [`diff`] — real-vs-simulated stream comparison over the shared
//!   schema subset.
//!
//! The runtime integration lives in `adaptivetc-runtime` behind its
//! `trace` cargo feature and the `Config::trace` runtime flag; with the
//! feature off this crate is not even compiled.

#![warn(missing_docs)]

pub mod analysis;
pub mod chrome;
pub mod clock;
pub mod collector;
pub mod diff;
pub mod event;
pub mod filter;
pub mod jobs;
pub mod ring;
pub(crate) mod sync;
pub mod validate;

pub use analysis::{
    deque_occupancy, dwell_times, response_time_cdf, steal_latency, steal_latency_cdf, Cdf, Dwell,
    Histogram, StealTree, TraceCounts,
};
pub use chrome::to_chrome_json;
pub use clock::TraceClock;
pub use collector::{Trace, TraceCollector, WorkerHandle, WorkerTrace};
pub use diff::TraceDiff;
pub use event::{legal_fsm_edge, Event, EventKind, FsmState, RawEvent};
pub use filter::{compiled_mask, Category};
pub use jobs::{validate_concurrent, JobMismatch};
pub use validate::{assert_valid, validate, Mismatch};
