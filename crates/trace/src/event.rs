//! The shared event schema: what both the threaded runtime and the
//! discrete-event simulator record.
//!
//! Events are stored in the per-worker rings as fixed-size 16-byte
//! [`RawEvent`]s (a timestamp plus a packed code/argument triple) so that
//! recording on the hot path is a single clock read and one cache-line
//! store. [`EventKind`] is the typed view used by every consumer; the
//! raw↔typed round-trip is lossless and property-tested.
//!
//! The schema deliberately mirrors `RunStats`: for every counter the
//! engine increments there is an event whose occurrence count must equal
//! it at the end of a run — that identity is what
//! [`validate`](crate::validate) checks.

/// The five compiled code versions of the paper's FSM, plus the two
/// scheduler-level states a *worker* (rather than a task) can be in:
/// `Slow` (executing a stolen continuation) and `Idle` (the steal loop).
///
/// This is the trace-side mirror of `adaptivetc_runtime::fsm::Version`;
/// the suite's integration tests assert the two stay in sync.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum FsmState {
    /// Task creation above the cut-off.
    Fast = 0,
    /// Fake tasks polling `need_task`.
    Check = 1,
    /// The special-task transition section.
    Special = 2,
    /// Task creation with doubled cut-off and reset depth.
    Fast2 = 3,
    /// Plain sequential execution below fast_2.
    Sequence = 4,
    /// A thief executing a stolen continuation.
    Slow = 5,
    /// The steal loop (no task in hand).
    Idle = 6,
}

impl FsmState {
    /// All states, indexable by discriminant.
    pub const ALL: [FsmState; 7] = [
        FsmState::Fast,
        FsmState::Check,
        FsmState::Special,
        FsmState::Fast2,
        FsmState::Sequence,
        FsmState::Slow,
        FsmState::Idle,
    ];

    /// Short name for reports and Chrome-trace track labels.
    pub fn name(&self) -> &'static str {
        match self {
            FsmState::Fast => "fast",
            FsmState::Check => "check",
            FsmState::Special => "special",
            FsmState::Fast2 => "fast_2",
            FsmState::Sequence => "sequence",
            FsmState::Slow => "slow",
            FsmState::Idle => "idle",
        }
    }

    fn from_u8(v: u8) -> FsmState {
        FsmState::ALL[v as usize % FsmState::ALL.len()]
    }
}

/// Is `from → to` an edge of the paper's version walk (Figure 2 as
/// interpreted by Appendix C, plus the slow-version entry/exit a steal
/// performs)?
///
/// The legal edges are exactly the decisions `adaptivetc_runtime::fsm`
/// encodes: `fast → check` (falling below the cut-off), `check → special`
/// (a raised `need_task` poll), `special → fast_2` (re-entry with reset
/// depth), `fast_2 → sequence` (below the doubled cut-off), and the
/// worker-level `idle → slow` / `slow → idle` bracket around a stolen
/// continuation.
pub fn legal_fsm_edge(from: FsmState, to: FsmState) -> bool {
    matches!(
        (from, to),
        (FsmState::Fast, FsmState::Check)
            | (FsmState::Check, FsmState::Special)
            | (FsmState::Special, FsmState::Fast2)
            | (FsmState::Fast2, FsmState::Sequence)
            | (FsmState::Idle, FsmState::Slow)
            | (FsmState::Slow, FsmState::Idle)
    )
}

/// One trace event, before timestamping.
///
/// `victim`/`owner` arguments are worker ids; `depth` is the task depth
/// (the paper's cut-off counter) at the emitting site.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum EventKind {
    /// A real task was created (`RunStats::tasks_created`).
    Spawn {
        /// Task depth of the created task.
        depth: u32,
    },
    /// A regular entry was pushed (`RunStats::deque_pushes`, regular part).
    Push,
    /// The owner popped its entry back (`RunStats::deque_pops`, regular).
    Pop,
    /// The owner's pop lost the THE race (`RunStats::pop_conflicts`).
    PopConflict,
    /// A thief probed `victim`'s deque.
    StealAttempt {
        /// The probed worker.
        victim: u32,
    },
    /// The probe succeeded (`RunStats::steals_ok`).
    StealOk {
        /// The robbed worker.
        victim: u32,
    },
    /// The probe found nothing stealable (`RunStats::steals_failed`).
    StealEmpty {
        /// The probed worker.
        victim: u32,
    },
    /// The probe extracted a duplicate some other extraction had already
    /// claimed (multiplicity backends only; the thief's share of
    /// `RunStats::dup_extractions`). Not a failed steal: the deque was
    /// not empty, so neither back-off nor the victim signal reacts.
    StealDup {
        /// The probed worker.
        victim: u32,
    },
    /// A node ran as a fake task (`RunStats::fake_tasks`).
    FakeTask {
        /// Task depth of the fake task.
        depth: u32,
    },
    /// A version transition of the paper's FSM.
    Fsm {
        /// State before the transition.
        from: FsmState,
        /// State after the transition.
        to: FsmState,
        /// Task depth at the transition point.
        depth: u32,
    },
    /// A special task was created (`RunStats::special_tasks`); opens a
    /// special-section span closed by [`EventKind::SpecialEnd`].
    SpecialBegin {
        /// Logical depth of the transitioning fake task.
        depth: u32,
    },
    /// The special section finished (its sync completed).
    SpecialEnd,
    /// A special entry was pushed (`RunStats::deque_pushes`, special part).
    SpecialPush,
    /// The owner consumed its special entry: `reclaimed` if the child was
    /// still present, otherwise a thief had taken it.
    SpecialConsume {
        /// Whether the special entry was reclaimed intact.
        reclaimed: bool,
    },
    /// A thief's failed-steal streak raised `victim`'s `need_task` flag.
    NeedTaskSignal {
        /// The starving worker's current victim.
        victim: u32,
    },
    /// The victim acknowledged its `need_task` flag (special transition).
    NeedTaskAck,
    /// Copy-on-steal: a thief asked `owner` for a workspace deposit.
    WsRequest {
        /// The frame's owning worker.
        owner: u32,
    },
    /// Copy-on-steal: the owner deposited a materialised workspace.
    WsDeposit,
    /// Copy-on-steal: the thief took a deposited workspace.
    WsTake,
    /// A spawn elided its eager workspace clone
    /// (`RunStats::workspace_copies_saved`).
    CopySaved,
    /// A special sync suspended with children outstanding
    /// (`RunStats::suspensions`).
    SyncSuspend,
    /// The suspended sync resumed (all children delivered).
    SyncResume,
    /// A job-server worker started participating in job `job` at job slot
    /// `slot`. All events this worker emits until the matching
    /// [`EventKind::JobEnd`] belong to that job's run-epoch; one-shot runs
    /// never emit it. See [`crate::Trace::split_jobs`].
    JobBegin {
        /// The server-assigned job id.
        job: u32,
        /// The job-local worker slot this pool worker filled.
        slot: u16,
    },
    /// The worker stopped participating in job `job` (completion,
    /// cancellation, or a joiner abandoning an idle steal loop).
    JobEnd {
        /// The server-assigned job id.
        job: u32,
    },
    /// The online controller retuned this worker's effective cutoff
    /// (`RunStats::cutoff_adjustments`).
    CutoffTune {
        /// The new effective cutoff after the adjustment.
        eff: u32,
        /// `true` for an increase (pressure), `false` for decay.
        up: bool,
    },
    /// The owner retuned its adaptive `need_task` threshold
    /// (`RunStats::threshold_adjustments`).
    ThresholdTune {
        /// The new `max_stolen_num` threshold after the adjustment.
        threshold: u32,
    },
}

/// Event codes of the compact binary encoding, one per [`EventKind`]
/// variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
#[allow(missing_docs)]
pub enum Code {
    Spawn = 0,
    Push = 1,
    Pop = 2,
    PopConflict = 3,
    StealAttempt = 4,
    StealOk = 5,
    StealEmpty = 6,
    FakeTask = 7,
    Fsm = 8,
    SpecialBegin = 9,
    SpecialEnd = 10,
    SpecialPush = 11,
    SpecialConsume = 12,
    NeedTaskSignal = 13,
    NeedTaskAck = 14,
    WsRequest = 15,
    WsDeposit = 16,
    WsTake = 17,
    CopySaved = 18,
    SyncSuspend = 19,
    SyncResume = 20,
    StealDup = 21,
    JobBegin = 22,
    JobEnd = 23,
    CutoffTune = 24,
    ThresholdTune = 25,
}

/// The 16-byte wire format: one timestamp, one code, two small arguments.
///
/// | field | bytes | meaning |
/// |---|---|---|
/// | `ts`   | 8 | nanoseconds since the run epoch (virtual ns in the sim) |
/// | `code` | 1 | [`Code`] discriminant |
/// | `a`    | 1 | packed small argument (FSM `from`/`to` nibbles, bools) |
/// | `b`    | 2 | worker id argument (victim / owner) |
/// | `c`    | 4 | depth argument |
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(C)]
pub struct RawEvent {
    /// Nanoseconds since the run epoch.
    pub ts: u64,
    /// [`Code`] discriminant.
    pub code: u8,
    /// Packed small argument.
    pub a: u8,
    /// Worker-id argument.
    pub b: u16,
    /// Depth argument.
    pub c: u32,
}

impl RawEvent {
    /// A zeroed placeholder (used to initialise ring storage).
    pub const ZERO: RawEvent = RawEvent {
        ts: 0,
        code: 0,
        a: 0,
        b: 0,
        c: 0,
    };

    /// Encode a typed event at timestamp `ts`.
    pub fn encode(ts: u64, kind: EventKind) -> RawEvent {
        let (code, a, b, c) = match kind {
            EventKind::Spawn { depth } => (Code::Spawn, 0, 0, depth),
            EventKind::Push => (Code::Push, 0, 0, 0),
            EventKind::Pop => (Code::Pop, 0, 0, 0),
            EventKind::PopConflict => (Code::PopConflict, 0, 0, 0),
            EventKind::StealAttempt { victim } => (Code::StealAttempt, 0, victim as u16, 0),
            EventKind::StealOk { victim } => (Code::StealOk, 0, victim as u16, 0),
            EventKind::StealEmpty { victim } => (Code::StealEmpty, 0, victim as u16, 0),
            EventKind::StealDup { victim } => (Code::StealDup, 0, victim as u16, 0),
            EventKind::FakeTask { depth } => (Code::FakeTask, 0, 0, depth),
            EventKind::Fsm { from, to, depth } => {
                (Code::Fsm, (from as u8) << 4 | (to as u8), 0, depth)
            }
            EventKind::SpecialBegin { depth } => (Code::SpecialBegin, 0, 0, depth),
            EventKind::SpecialEnd => (Code::SpecialEnd, 0, 0, 0),
            EventKind::SpecialPush => (Code::SpecialPush, 0, 0, 0),
            EventKind::SpecialConsume { reclaimed } => {
                (Code::SpecialConsume, reclaimed as u8, 0, 0)
            }
            EventKind::NeedTaskSignal { victim } => (Code::NeedTaskSignal, 0, victim as u16, 0),
            EventKind::NeedTaskAck => (Code::NeedTaskAck, 0, 0, 0),
            EventKind::WsRequest { owner } => (Code::WsRequest, 0, owner as u16, 0),
            EventKind::WsDeposit => (Code::WsDeposit, 0, 0, 0),
            EventKind::WsTake => (Code::WsTake, 0, 0, 0),
            EventKind::CopySaved => (Code::CopySaved, 0, 0, 0),
            EventKind::SyncSuspend => (Code::SyncSuspend, 0, 0, 0),
            EventKind::SyncResume => (Code::SyncResume, 0, 0, 0),
            EventKind::JobBegin { job, slot } => (Code::JobBegin, 0, slot, job),
            EventKind::JobEnd { job } => (Code::JobEnd, 0, 0, job),
            EventKind::CutoffTune { eff, up } => (Code::CutoffTune, up as u8, 0, eff),
            EventKind::ThresholdTune { threshold } => (Code::ThresholdTune, 0, 0, threshold),
        };
        RawEvent {
            ts,
            code: code as u8,
            a,
            b,
            c,
        }
    }

    /// Decode back to the typed view.
    pub fn decode(&self) -> EventKind {
        match self.code {
            0 => EventKind::Spawn { depth: self.c },
            1 => EventKind::Push,
            2 => EventKind::Pop,
            3 => EventKind::PopConflict,
            4 => EventKind::StealAttempt {
                victim: self.b as u32,
            },
            5 => EventKind::StealOk {
                victim: self.b as u32,
            },
            6 => EventKind::StealEmpty {
                victim: self.b as u32,
            },
            7 => EventKind::FakeTask { depth: self.c },
            8 => EventKind::Fsm {
                from: FsmState::from_u8(self.a >> 4),
                to: FsmState::from_u8(self.a & 0x0F),
                depth: self.c,
            },
            9 => EventKind::SpecialBegin { depth: self.c },
            10 => EventKind::SpecialEnd,
            11 => EventKind::SpecialPush,
            12 => EventKind::SpecialConsume {
                reclaimed: self.a != 0,
            },
            13 => EventKind::NeedTaskSignal {
                victim: self.b as u32,
            },
            14 => EventKind::NeedTaskAck,
            15 => EventKind::WsRequest {
                owner: self.b as u32,
            },
            16 => EventKind::WsDeposit,
            17 => EventKind::WsTake,
            18 => EventKind::CopySaved,
            19 => EventKind::SyncSuspend,
            20 => EventKind::SyncResume,
            22 => EventKind::JobBegin {
                job: self.c,
                slot: self.b,
            },
            23 => EventKind::JobEnd { job: self.c },
            24 => EventKind::CutoffTune {
                eff: self.c,
                up: self.a != 0,
            },
            25 => EventKind::ThresholdTune { threshold: self.c },
            _ => EventKind::StealDup {
                victim: self.b as u32,
            },
        }
    }
}

/// A decoded event with its timestamp.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Event {
    /// Nanoseconds since the run epoch (virtual ns in the simulator).
    pub ts: u64,
    /// What happened.
    pub kind: EventKind,
}

impl EventKind {
    /// A short stable name for reports, Chrome-trace entries and diffs.
    pub fn name(&self) -> &'static str {
        match self {
            EventKind::Spawn { .. } => "spawn",
            EventKind::Push => "push",
            EventKind::Pop => "pop",
            EventKind::PopConflict => "pop_conflict",
            EventKind::StealAttempt { .. } => "steal_attempt",
            EventKind::StealOk { .. } => "steal_ok",
            EventKind::StealEmpty { .. } => "steal_empty",
            EventKind::StealDup { .. } => "steal_dup",
            EventKind::FakeTask { .. } => "fake_task",
            EventKind::Fsm { .. } => "fsm",
            EventKind::SpecialBegin { .. } => "special_begin",
            EventKind::SpecialEnd => "special_end",
            EventKind::SpecialPush => "special_push",
            EventKind::SpecialConsume { .. } => "special_consume",
            EventKind::NeedTaskSignal { .. } => "need_task_signal",
            EventKind::NeedTaskAck => "need_task_ack",
            EventKind::WsRequest { .. } => "ws_request",
            EventKind::WsDeposit => "ws_deposit",
            EventKind::WsTake => "ws_take",
            EventKind::CopySaved => "copy_saved",
            EventKind::SyncSuspend => "sync_suspend",
            EventKind::SyncResume => "sync_resume",
            EventKind::JobBegin { .. } => "job_begin",
            EventKind::JobEnd { .. } => "job_end",
            EventKind::CutoffTune { .. } => "cutoff_tune",
            EventKind::ThresholdTune { .. } => "threshold_tune",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_kinds() -> Vec<EventKind> {
        let mut v = vec![
            EventKind::Spawn { depth: 3 },
            EventKind::Push,
            EventKind::Pop,
            EventKind::PopConflict,
            EventKind::StealAttempt { victim: 7 },
            EventKind::StealOk { victim: 1 },
            EventKind::StealEmpty { victim: 65535 },
            EventKind::StealDup { victim: 4 },
            EventKind::FakeTask { depth: u32::MAX },
            EventKind::SpecialBegin { depth: 9 },
            EventKind::SpecialEnd,
            EventKind::SpecialPush,
            EventKind::SpecialConsume { reclaimed: true },
            EventKind::SpecialConsume { reclaimed: false },
            EventKind::NeedTaskSignal { victim: 2 },
            EventKind::NeedTaskAck,
            EventKind::WsRequest { owner: 3 },
            EventKind::WsDeposit,
            EventKind::WsTake,
            EventKind::CopySaved,
            EventKind::SyncSuspend,
            EventKind::SyncResume,
            EventKind::JobBegin {
                job: 17,
                slot: 65535,
            },
            EventKind::JobEnd { job: u32::MAX },
            EventKind::CutoffTune { eff: 12, up: true },
            EventKind::CutoffTune { eff: 4, up: false },
            EventKind::ThresholdTune { threshold: 16 },
        ];
        for from in FsmState::ALL {
            for to in FsmState::ALL {
                v.push(EventKind::Fsm { from, to, depth: 5 });
            }
        }
        v
    }

    #[test]
    fn raw_event_is_16_bytes() {
        assert_eq!(std::mem::size_of::<RawEvent>(), 16);
    }

    #[test]
    fn encode_decode_roundtrips() {
        for kind in all_kinds() {
            let raw = RawEvent::encode(42, kind);
            assert_eq!(raw.ts, 42);
            assert_eq!(raw.decode(), kind, "{kind:?} did not roundtrip");
        }
    }

    #[test]
    fn legal_edges_are_exactly_the_fsm_walk() {
        let legal: Vec<(FsmState, FsmState)> = FsmState::ALL
            .into_iter()
            .flat_map(|f| FsmState::ALL.into_iter().map(move |t| (f, t)))
            .filter(|(f, t)| legal_fsm_edge(*f, *t))
            .collect();
        assert_eq!(
            legal,
            vec![
                (FsmState::Fast, FsmState::Check),
                (FsmState::Check, FsmState::Special),
                (FsmState::Special, FsmState::Fast2),
                (FsmState::Fast2, FsmState::Sequence),
                (FsmState::Slow, FsmState::Idle),
                (FsmState::Idle, FsmState::Slow),
            ]
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = all_kinds().iter().map(|k| k.name()).collect();
        names.sort_unstable();
        names.dedup();
        // 25 non-FSM variants + the single "fsm" name.
        assert_eq!(names.len(), 26);
        let mut state_names: Vec<_> = FsmState::ALL.iter().map(|s| s.name()).collect();
        state_names.sort_unstable();
        state_names.dedup();
        assert_eq!(state_names.len(), FsmState::ALL.len());
    }
}
