//! Per-worker SPSC event ring with a block-claim producer protocol.
//!
//! One [`EventRing`] belongs to exactly one producer (the worker thread
//! that records into it). The hot-path contract is deliberately narrow so
//! that [`EventRing::push`] compiles to a store, a counter bump and one
//! predictable branch:
//!
//! * **Single producer, private cursor.** Only the owning worker calls
//!   `push`. The write cursor (`tail`) is a plain [`Cell`] the producer
//!   alone touches — no atomic load, store or RMW per event. The
//!   producer implicitly *claims a block* of `block` slots at a time:
//!   only when the cursor crosses a block boundary does it publish the
//!   new tail with a single `Release` store. Between publications the
//!   freshest `< block` events are invisible to observers — never lost,
//!   only not yet published.
//! * **Drop-oldest without a head counter.** The cursor wraps over the
//!   power-of-two slot array, so a full ring overwrites the oldest
//!   event by construction. The head is *derived*, not stored:
//!   `head = max(consumed, tail − capacity)`, and the dropped count is
//!   whatever that subtraction swallowed. The old design's per-push
//!   head load, full-ring branch and `fetch_add` are gone entirely.
//! * **Quiescent consumer.** [`EventRing::drain`] requires `&mut self`
//!   and is only called after the worker threads have been joined (the
//!   collector's `finish` consumes `self`); it reads the producer's
//!   private cursor directly, which the join's happens-before makes
//!   safe. Mid-run observers must use [`EventRing::published_len`],
//!   which reads only the `Release`-published tail.
//! * **Producer-side sampling.** The per-category 1-in-N countdowns of
//!   the collector's sampling path ([`EventRing::sample_tick`]) also
//!   live in the producer's private cache line as plain `Cell`s.
//!
//! Slots are plain [`RawEvent`]s in `UnsafeCell`s; the producer state
//! and the published tail are `CachePadded` so two adjacent workers'
//! rings never false-share their control words.

use crate::event::{Event, RawEvent};
use crate::filter::Category;
use crate::sync::{AtomicU64, Ordering};
use crossbeam_utils::CachePadded;
use std::cell::{Cell, UnsafeCell};

/// Minimum ring capacity; smaller requests are rounded up.
pub const MIN_CAPACITY: usize = 16;

/// Block granularity of tail publication (capped at the ring capacity):
/// the producer publishes its cursor once per this many events.
pub const BLOCK: u64 = 64;

/// Producer-private state: touched only by the owning worker thread.
struct Producer {
    /// Next free slot index (monotonically increasing, not wrapped).
    tail: Cell<u64>,
    /// First index past the currently claimed block; crossing it
    /// publishes the cursor and claims the next block.
    block_end: Cell<u64>,
    /// Per-category 1-in-N sampling countdowns.
    samples: [Cell<u32>; Category::ALL.len()],
}

/// A fixed-capacity single-producer event buffer with drop-oldest
/// overflow semantics and block-granular tail publication.
pub struct EventRing {
    slots: Box<[UnsafeCell<RawEvent>]>,
    mask: u64,
    block: u64,
    /// Producer-private cursors (see [`Producer`]).
    prod: CachePadded<Producer>,
    /// Tail as of the last block boundary, `Release`-published for
    /// mid-run observers. Lags `prod.tail` by less than `block`.
    published: CachePadded<AtomicU64>,
    /// Index up to which `drain` has consumed (consumer-private).
    consumed: Cell<u64>,
    /// Overwritten events accounted by past drains (consumer-private).
    dropped_drained: Cell<u64>,
}

// SAFETY: the slot cells and the producer/consumer `Cell`s are split by
// role. Producer state (`prod`, slot writes) is touched only by the
// single producer thread; consumer state (`consumed`, `dropped_drained`,
// slot reads) only under `&mut self` (`drain`) or after the producer has
// quiesced (`len`/`dropped`, see their docs) — so at any point in time
// at most one thread touches a given cell, and the handoff from producer
// to consumer is ordered by the thread join that precedes draining (see
// the module docs). Cross-thread *mid-run* observation goes exclusively
// through the `published` atomic.
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum [`MIN_CAPACITY`]).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(MIN_CAPACITY).next_power_of_two();
        let slots: Vec<UnsafeCell<RawEvent>> =
            (0..cap).map(|_| UnsafeCell::new(RawEvent::ZERO)).collect();
        let block = BLOCK.min(cap as u64);
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            block,
            prod: CachePadded::new(Producer {
                tail: Cell::new(0),
                block_end: Cell::new(block),
                samples: [const { Cell::new(0) }; Category::ALL.len()],
            }),
            published: CachePadded::new(AtomicU64::new(0)),
            consumed: Cell::new(0),
            dropped_drained: Cell::new(0),
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event. Wait-free; on a full ring the oldest event is
    /// overwritten (drop-oldest, accounted at drain time).
    ///
    /// # Safety contract (not enforced by the type system)
    /// Must only be called from the single producer thread that owns this
    /// ring; the collector hands out one [`WorkerHandle`] per worker to
    /// uphold this.
    ///
    /// [`WorkerHandle`]: crate::collector::WorkerHandle
    #[inline]
    pub fn push(&self, ev: RawEvent) {
        let tail = self.prod.tail.get();
        let idx = (tail & self.mask) as usize;
        // SAFETY: single producer (contract above); no concurrent reader
        // until quiescent drain.
        unsafe { *self.slots[idx].get() = ev };
        let next = tail + 1;
        self.prod.tail.set(next);
        if next == self.prod.block_end.get() {
            // Block boundary: publish the claimed block in one go.
            self.published.store(next, Ordering::Release);
            self.prod.block_end.set(next + self.block);
        }
    }

    /// Producer-side 1-in-N sampling countdown for `cat`: returns `true`
    /// when this occurrence should be recorded (the first of every run
    /// of `n`). Producer-only, like [`EventRing::push`].
    #[inline]
    pub fn sample_tick(&self, cat: Category, n: u32) -> bool {
        let cell = &self.prod.samples[cat as usize];
        let left = cell.get();
        if left == 0 {
            cell.set(n - 1);
            true
        } else {
            cell.set(left - 1);
            false
        }
    }

    /// Events published so far and not yet consumed — what a *mid-run*
    /// observer on another thread may safely see. Lags the true count by
    /// less than the block size.
    pub fn published_len(&self) -> usize {
        let published = self.published.load(Ordering::Acquire);
        let consumed = self.consumed.get();
        let head = consumed.max(published.saturating_sub(self.slots.len() as u64));
        (published - head) as usize
    }

    /// Overwritten events not yet accounted by a drain.
    fn pending_overwrites(&self) -> u64 {
        self.prod
            .tail
            .get()
            .saturating_sub(self.slots.len() as u64)
            .saturating_sub(self.consumed.get())
    }

    /// Events overwritten so far. Exact, so it reads the producer's
    /// private cursor: only call once the producer has quiesced (or from
    /// the producer thread itself).
    pub fn dropped(&self) -> u64 {
        self.dropped_drained.get() + self.pending_overwrites()
    }

    /// Number of live events currently buffered. Quiescent-exact, like
    /// [`EventRing::dropped`]; mid-run observers want
    /// [`EventRing::published_len`].
    pub fn len(&self) -> usize {
        let tail = self.prod.tail.get();
        let head = self
            .consumed
            .get()
            .max(tail.saturating_sub(self.slots.len() as u64));
        (tail - head) as usize
    }

    /// True when no events are buffered (quiescent-exact).
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode *published* events oldest-first while the producer may
    /// still be running.
    ///
    /// Safety argument: the producer's private `tail` is at most
    /// `block − 1` ahead of the `Release`-published cursor, so the slots
    /// it may currently be writing all alias ring indices in
    /// `[published − capacity, published − capacity + block)`. This
    /// reader therefore starts no earlier than
    /// `published − capacity + block` — every slot it touches was
    /// written before the `Release` store its `Acquire` load observed,
    /// and the producer cannot wrap back onto it until `tail` passes
    /// `published + capacity − block`, i.e. not before the next
    /// publication. Events skipped by that guard band (only possible
    /// when the ring is within one block of overflow) are counted as
    /// dropped.
    ///
    /// # Contract (not enforced by the type system)
    /// At most one consumer thread may call this (it advances the same
    /// consumer-private cursor as [`EventRing::drain`]), and it must not
    /// race the quiescent drain — the collector serialises both behind a
    /// reader lock.
    pub fn drain_published(&self) -> Vec<Event> {
        let published = self.published.load(Ordering::Acquire);
        let consumed = self.consumed.get();
        let guard = (published + self.block).saturating_sub(self.slots.len() as u64);
        let head = consumed.max(guard);
        if head >= published {
            return Vec::new();
        }
        self.dropped_drained
            .set(self.dropped_drained.get() + (head - consumed));
        let mut out = Vec::with_capacity((published - head) as usize);
        for i in head..published {
            let idx = (i & self.mask) as usize;
            // SAFETY: slot `i` is outside the producer's current write
            // window (see the guard-band argument above) and its write
            // happens-before the Acquire load of `published`.
            let raw = unsafe { *self.slots[idx].get() };
            out.push(Event {
                ts: raw.ts,
                kind: raw.decode(),
            });
        }
        self.consumed.set(published);
        out
    }

    /// Decode the live events oldest-first. Requires exclusive access —
    /// i.e. the producer has quiesced (worker joined).
    pub fn drain(&mut self) -> Vec<Event> {
        let tail = self.prod.tail.get();
        let consumed = self.consumed.get();
        let head = consumed.max(tail.saturating_sub(self.slots.len() as u64));
        self.dropped_drained
            .set(self.dropped_drained.get() + (head - consumed));
        let mut out = Vec::with_capacity((tail - head) as usize);
        for i in head..tail {
            let idx = (i & self.mask) as usize;
            // SAFETY: exclusive access via &mut self.
            let raw = unsafe { *self.slots[idx].get() };
            out.push(Event {
                ts: raw.ts,
                kind: raw.decode(),
            });
        }
        self.consumed.set(tail);
        // Catch the published tail up so observers agree the ring is
        // empty again.
        self.published.store(tail, Ordering::Release);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::with_capacity(0).capacity(), MIN_CAPACITY);
        assert_eq!(EventRing::with_capacity(17).capacity(), 32);
        assert_eq!(EventRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn push_drain_preserves_order() {
        let mut ring = EventRing::with_capacity(64);
        for i in 0..10u64 {
            ring.push(RawEvent::encode(i, EventKind::Spawn { depth: i as u32 }));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 10);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.ts, i as u64);
            assert_eq!(ev.kind, EventKind::Spawn { depth: i as u32 });
        }
        assert_eq!(ring.dropped(), 0);
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = EventRing::with_capacity(16);
        for i in 0..40u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        assert_eq!(ring.dropped(), 40 - 16);
        let events = ring.drain();
        assert_eq!(events.len(), 16);
        // The survivors are the newest 16, oldest-first.
        assert_eq!(events.first().unwrap().ts, 24);
        assert_eq!(events.last().unwrap().ts, 39);
        // Drop accounting survives the drain.
        assert_eq!(ring.dropped(), 24);
    }

    #[test]
    fn drain_resets_ring() {
        let mut ring = EventRing::with_capacity(16);
        ring.push(RawEvent::encode(1, EventKind::Pop));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.drain().len(), 0);
        ring.push(RawEvent::encode(2, EventKind::Pop));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn publication_is_block_granular() {
        let ring = EventRing::with_capacity(256);
        for i in 0..(BLOCK - 1) {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        // One short of a block: nothing published yet.
        assert_eq!(ring.published_len(), 0);
        assert_eq!(ring.len(), (BLOCK - 1) as usize);
        ring.push(RawEvent::encode(BLOCK, EventKind::Push));
        assert_eq!(ring.published_len(), BLOCK as usize);
    }

    #[test]
    fn tiny_rings_publish_every_capacity_events() {
        // Block is capped at the capacity, so a minimum-size ring still
        // publishes.
        let ring = EventRing::with_capacity(MIN_CAPACITY);
        for i in 0..MIN_CAPACITY as u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        assert_eq!(ring.published_len(), MIN_CAPACITY);
    }

    #[test]
    fn published_len_caps_at_capacity_on_overflow() {
        let ring = EventRing::with_capacity(16);
        for i in 0..160u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        assert_eq!(ring.published_len(), 16);
        assert_eq!(ring.len(), 16);
        assert_eq!(ring.dropped(), 144);
    }

    #[test]
    fn sample_tick_records_one_in_n() {
        let ring = EventRing::with_capacity(16);
        let hits: Vec<bool> = (0..10)
            .map(|_| ring.sample_tick(Category::Deque, 4))
            .collect();
        assert_eq!(
            hits,
            vec![true, false, false, false, true, false, false, false, true, false]
        );
        // Categories count down independently.
        assert!(ring.sample_tick(Category::Fake, 4));
    }

    #[test]
    fn cross_thread_handoff_after_join() {
        let ring = std::sync::Arc::new(EventRing::with_capacity(1024));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    ring.push(RawEvent::encode(i, EventKind::Push));
                }
            })
        };
        producer.join().unwrap();
        let mut ring = std::sync::Arc::try_unwrap(ring).ok().expect("sole owner");
        let events = ring.drain();
        assert_eq!(events.len(), 500);
        assert!(events.windows(2).all(|w| w[0].ts < w[1].ts));
    }

    #[test]
    fn drain_published_hands_out_each_event_exactly_once() {
        let mut ring = EventRing::with_capacity(1024);
        for i in 0..100u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        // 100 pushed, 64 published (one block): the mid-run reader gets
        // exactly the published prefix.
        let snap = ring.drain_published();
        assert_eq!(snap.len(), BLOCK as usize);
        assert_eq!(snap.first().unwrap().ts, 0);
        assert_eq!(snap.last().unwrap().ts, BLOCK - 1);
        // A second snapshot with nothing newly published is empty.
        assert!(ring.drain_published().is_empty());
        // The quiescent drain picks up only the remainder.
        let rest = ring.drain();
        assert_eq!(rest.len(), 100 - BLOCK as usize);
        assert_eq!(rest.first().unwrap().ts, BLOCK);
        assert_eq!(ring.dropped(), 0);
    }

    #[test]
    fn drain_published_stays_out_of_the_producer_write_window() {
        // Capacity 128, block 64: with 128 events published the guard
        // band excludes the oldest block (the producer may be wrapping
        // onto it), and the skipped events count as dropped.
        let mut ring = EventRing::with_capacity(128);
        for i in 0..128u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        let snap = ring.drain_published();
        assert_eq!(snap.len(), 128 - BLOCK as usize);
        assert_eq!(snap.first().unwrap().ts, BLOCK);
        assert_eq!(ring.dropped(), BLOCK);
        assert!(ring.drain().is_empty());
    }

    #[test]
    fn drain_published_while_producer_races() {
        // A concurrent reader must only ever see timestamps in order and
        // each exactly once, with reader+drain+dropped covering all
        // events. The big ring keeps the producer from lapping.
        let ring = std::sync::Arc::new(EventRing::with_capacity(1 << 16));
        let reader = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = Vec::new();
                while seen.len() < 2048 {
                    seen.extend(ring.drain_published());
                }
                seen
            })
        };
        for i in 0..8192u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        let seen = reader.join().unwrap();
        assert!(seen.windows(2).all(|w| w[0].ts < w[1].ts));
        assert_eq!(seen.first().unwrap().ts, 0);
        let mut ring = std::sync::Arc::try_unwrap(ring).ok().expect("sole owner");
        let rest = ring.drain();
        assert_eq!(seen.len() as u64 + rest.len() as u64 + ring.dropped(), 8192);
    }

    #[test]
    fn mid_run_observer_sees_only_published_blocks() {
        // A reader polling published_len concurrently with a producer
        // must only ever see multiples of the block (until overflow).
        let ring = std::sync::Arc::new(EventRing::with_capacity(1 << 16));
        let observer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                let mut seen = 0usize;
                while seen < 4096 {
                    seen = ring.published_len();
                    assert_eq!(seen as u64 % BLOCK, 0);
                }
            })
        };
        for i in 0..4096u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        observer.join().unwrap();
    }
}
