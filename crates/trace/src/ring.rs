//! Per-worker SPSC event ring.
//!
//! One [`EventRing`] belongs to exactly one producer (the worker thread
//! that records into it). The hot-path contract is deliberately narrow so
//! that [`EventRing::push`] is wait-free:
//!
//! * **Single producer.** Only the owning worker calls `push`. Both the
//!   head (oldest live slot) and the tail (next free slot) are advanced
//!   by the producer alone — on overflow the *producer* performs the
//!   drop-oldest step (advance head, bump the `dropped` counter), so no
//!   consumer coordination exists on the hot path at all.
//! * **Quiescent consumer.** [`EventRing::drain`] is only called after
//!   the worker threads have been joined (the collector's `finish`
//!   consumes `self`), so the relaxed atomics need only establish
//!   ordering through the join, which `std::thread::join` provides.
//!
//! Slots are plain [`RawEvent`]s in `UnsafeCell`s; head/tail/dropped are
//! `CachePadded` atomics so two adjacent workers' rings never false-share
//! their control words.

use crate::event::{Event, RawEvent};
use crate::sync::{AtomicU64, Ordering};
use crossbeam_utils::CachePadded;
use std::cell::UnsafeCell;

/// Minimum ring capacity; smaller requests are rounded up.
pub const MIN_CAPACITY: usize = 16;

/// A fixed-capacity single-producer event buffer with drop-oldest
/// overflow semantics.
pub struct EventRing {
    slots: Box<[UnsafeCell<RawEvent>]>,
    mask: u64,
    /// Oldest live slot index (monotonically increasing, not wrapped).
    head: CachePadded<AtomicU64>,
    /// Next free slot index (monotonically increasing, not wrapped).
    tail: CachePadded<AtomicU64>,
    /// Events overwritten because the ring was full.
    dropped: CachePadded<AtomicU64>,
}

// SAFETY: the slot cells are only written by the single producer thread
// and only read by `drain`, which requires `&mut self` — so at any point
// in time at most one thread touches a given cell, and the handoff from
// producer to consumer is ordered by the thread join that precedes
// draining (see the module docs).
unsafe impl Sync for EventRing {}
unsafe impl Send for EventRing {}

impl EventRing {
    /// Create a ring holding at least `capacity` events (rounded up to a
    /// power of two, minimum [`MIN_CAPACITY`]).
    pub fn with_capacity(capacity: usize) -> EventRing {
        let cap = capacity.max(MIN_CAPACITY).next_power_of_two();
        let slots: Vec<UnsafeCell<RawEvent>> =
            (0..cap).map(|_| UnsafeCell::new(RawEvent::ZERO)).collect();
        EventRing {
            slots: slots.into_boxed_slice(),
            mask: (cap - 1) as u64,
            head: CachePadded::new(AtomicU64::new(0)),
            tail: CachePadded::new(AtomicU64::new(0)),
            dropped: CachePadded::new(AtomicU64::new(0)),
        }
    }

    /// Number of event slots.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Record one event. Wait-free; on a full ring the oldest event is
    /// overwritten and the dropped counter incremented.
    ///
    /// # Safety contract (not enforced by the type system)
    /// Must only be called from the single producer thread that owns this
    /// ring; the collector hands out one [`WorkerHandle`] per worker to
    /// uphold this.
    ///
    /// [`WorkerHandle`]: crate::collector::WorkerHandle
    pub fn push(&self, ev: RawEvent) {
        let tail = self.tail.load(Ordering::Relaxed);
        let head = self.head.load(Ordering::Relaxed);
        if tail - head == self.slots.len() as u64 {
            // Full: drop the oldest. Only the producer moves head, so a
            // plain store is race-free.
            self.head.store(head + 1, Ordering::Relaxed);
            self.dropped.fetch_add(1, Ordering::Relaxed);
        }
        let idx = (tail & self.mask) as usize;
        // SAFETY: single producer (contract above); no concurrent reader
        // until quiescent drain.
        unsafe { *self.slots[idx].get() = ev };
        self.tail.store(tail + 1, Ordering::Release);
    }

    /// Events overwritten so far.
    pub fn dropped(&self) -> u64 {
        self.dropped.load(Ordering::Relaxed)
    }

    /// Number of live events currently buffered.
    pub fn len(&self) -> usize {
        (self.tail.load(Ordering::Relaxed) - self.head.load(Ordering::Relaxed)) as usize
    }

    /// True when no events are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Decode the live events oldest-first. Requires exclusive access —
    /// i.e. the producer has quiesced (worker joined).
    pub fn drain(&mut self) -> Vec<Event> {
        let head = self.head.load(Ordering::Acquire);
        let tail = self.tail.load(Ordering::Acquire);
        let mut out = Vec::with_capacity((tail - head) as usize);
        for i in head..tail {
            let idx = (i & self.mask) as usize;
            // SAFETY: exclusive access via &mut self.
            let raw = unsafe { *self.slots[idx].get() };
            out.push(Event {
                ts: raw.ts,
                kind: raw.decode(),
            });
        }
        self.head.store(tail, Ordering::Relaxed);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn capacity_rounds_up() {
        assert_eq!(EventRing::with_capacity(0).capacity(), MIN_CAPACITY);
        assert_eq!(EventRing::with_capacity(17).capacity(), 32);
        assert_eq!(EventRing::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn push_drain_preserves_order() {
        let mut ring = EventRing::with_capacity(64);
        for i in 0..10u64 {
            ring.push(RawEvent::encode(i, EventKind::Spawn { depth: i as u32 }));
        }
        let events = ring.drain();
        assert_eq!(events.len(), 10);
        for (i, ev) in events.iter().enumerate() {
            assert_eq!(ev.ts, i as u64);
            assert_eq!(ev.kind, EventKind::Spawn { depth: i as u32 });
        }
        assert_eq!(ring.dropped(), 0);
        assert!(ring.is_empty());
    }

    #[test]
    fn overflow_drops_oldest_and_counts() {
        let mut ring = EventRing::with_capacity(16);
        for i in 0..40u64 {
            ring.push(RawEvent::encode(i, EventKind::Push));
        }
        assert_eq!(ring.dropped(), 40 - 16);
        let events = ring.drain();
        assert_eq!(events.len(), 16);
        // The survivors are the newest 16, oldest-first.
        assert_eq!(events.first().unwrap().ts, 24);
        assert_eq!(events.last().unwrap().ts, 39);
    }

    #[test]
    fn drain_resets_ring() {
        let mut ring = EventRing::with_capacity(16);
        ring.push(RawEvent::encode(1, EventKind::Pop));
        assert_eq!(ring.drain().len(), 1);
        assert_eq!(ring.drain().len(), 0);
        ring.push(RawEvent::encode(2, EventKind::Pop));
        assert_eq!(ring.drain().len(), 1);
    }

    #[test]
    fn cross_thread_handoff_after_join() {
        let ring = std::sync::Arc::new(EventRing::with_capacity(1024));
        let producer = {
            let ring = std::sync::Arc::clone(&ring);
            std::thread::spawn(move || {
                for i in 0..500u64 {
                    ring.push(RawEvent::encode(i, EventKind::Push));
                }
            })
        };
        producer.join().unwrap();
        let mut ring = std::sync::Arc::try_unwrap(ring).ok().expect("sole owner");
        let events = ring.drain();
        assert_eq!(events.len(), 500);
        assert!(events.windows(2).all(|w| w[0].ts < w[1].ts));
    }
}
