//! The run-epoch clock: raw TSC where the hardware guarantees it, a
//! monotonic OS clock everywhere else.
//!
//! All events in a trace are stamped with nanoseconds since a single
//! *run epoch* captured when the collector is created. Two backends
//! provide that stamp:
//!
//! * **TSC** (x86_64 only): a plain `rdtsc` read plus a fixed-point
//!   cycles→ns multiply, ~10–30 cycles per stamp. Selected only when
//!   CPUID advertises an *invariant* TSC (leaf `0x8000_0007`, EDX bit 8:
//!   the counter runs at a constant rate regardless of P-/C-states). On
//!   hardware with the invariant bit set the OS relies on the TSC being
//!   synchronized across cores of a package (it is the kernel's own
//!   `sched_clock` source), so timestamps taken on different workers are
//!   directly comparable — there is still **no per-worker calibration**,
//!   only one process-global cycles→ns fit performed once (see below).
//!
//!   `rdtsc` is deliberately unfenced: the serialized variants
//!   (`rdtscp`, `lfence; rdtsc`) wait for prior instructions to retire,
//!   which measures ~2× slower on virtualized hosts, and the ordering
//!   they buy is irrelevant here — consecutive emissions on one worker
//!   are separated by far more than the out-of-order window, and the
//!   counter itself never decreases. `clock_is_monotonic` guards the
//!   per-worker monotonicity claim with a tight back-to-back read loop.
//! * **Instant** (fallback): `std::time::Instant`, guaranteed monotonic
//!   and global (CLOCK_MONOTONIC / QueryPerformanceCounter) but a vDSO
//!   call per stamp — an order of magnitude slower than a TSC read.
//!   Used on non-x86_64 targets, when CPUID lacks the invariant-TSC
//!   bit, when calibration fails a sanity check, or when
//!   `ADAPTIVETC_TRACE_CLOCK=instant` forces it.
//!
//! **Calibration handshake.** The first `TraceClock::start()` in the
//! process fits cycles→ns against `Instant`: it brackets a ~2 ms
//! busy-wait with paired (`Instant`, TSC) samples and derives a 32.32
//! fixed-point multiplier `mult = ns·2³² / cycles`, cached in a
//! process-global `OnceLock`. A stamp is then
//! `((tsc − epoch_cycles)·mult) >> 32`. The fit is rejected (falling
//! back to `Instant`) if the implied frequency is outside 100 MHz–10 GHz.
//! The handshake runs inside collector creation, *before* the engine
//! starts its wall-clock measurement, and only once per process — so
//! repeated traced runs pay nothing.
//!
//! Each worker still reads the clock itself (no shared mutable state),
//! so stamping stays wait-free on both backends.
//!
//! The simulator bypasses this clock entirely and stamps events with its
//! virtual time via `TraceCollector::emit_at`.

use std::sync::OnceLock;
use std::time::Instant;

/// The calibrated TSC parameters shared by every clock in the process,
/// or `None` when the TSC backend is unusable. Computed at most once.
static TSC_MULT: OnceLock<Option<u64>> = OnceLock::new();

/// A shared run epoch; `now()` is nanoseconds since it.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    /// Fallback epoch, also the fit reference during calibration.
    epoch: Instant,
    /// `Some((epoch_cycles, mult))` when the TSC backend is active.
    tsc: Option<(u64, u64)>,
}

impl TraceClock {
    /// Capture the run epoch, selecting the TSC backend when the
    /// hardware supports it (see the module docs for the criteria).
    pub fn start() -> TraceClock {
        let epoch = Instant::now();
        let tsc = tsc_mult().map(|mult| (read_tsc(), mult));
        TraceClock { epoch, tsc }
    }

    /// Capture the run epoch with the `Instant` backend unconditionally.
    /// Used by tests (to cover both backends on one machine) and by the
    /// bench harness (to measure the backends against each other).
    pub fn start_instant() -> TraceClock {
        TraceClock {
            epoch: Instant::now(),
            tsc: None,
        }
    }

    /// Which backend this clock stamps with: `"tsc"` or `"instant"`.
    pub fn backend(&self) -> &'static str {
        if self.tsc.is_some() {
            "tsc"
        } else {
            "instant"
        }
    }

    /// Nanoseconds elapsed since the epoch. Saturates at `u64::MAX`
    /// (≈ 584 years), which is unreachable in practice.
    #[inline]
    pub fn now(&self) -> u64 {
        match self.tsc {
            Some((epoch_cycles, mult)) => {
                let delta = read_tsc().wrapping_sub(epoch_cycles);
                ((u128::from(delta) * u128::from(mult)) >> 32) as u64
            }
            None => {
                let d = self.epoch.elapsed();
                d.as_secs()
                    .saturating_mul(1_000_000_000)
                    .saturating_add(u64::from(d.subsec_nanos()))
            }
        }
    }
}

/// The process-global cycles→ns multiplier (32.32 fixed point), or
/// `None` when the TSC backend must not be used.
fn tsc_mult() -> Option<u64> {
    *TSC_MULT.get_or_init(|| {
        if std::env::var("ADAPTIVETC_TRACE_CLOCK").as_deref() == Ok("instant") {
            return None;
        }
        if !tsc_usable() {
            return None;
        }
        calibrate()
    })
}

/// Fit cycles→ns against `Instant` over a short busy-wait. Returns the
/// 32.32 fixed-point multiplier, or `None` if the fit is implausible.
#[cfg(target_arch = "x86_64")]
fn calibrate() -> Option<u64> {
    let i0 = Instant::now();
    let c0 = read_tsc();
    // Busy-wait (not sleep): a sleep's wake-up latency would not hurt the
    // ratio, but spinning keeps the handshake at ~2 ms deterministically.
    while i0.elapsed().as_micros() < 2_000 {
        std::hint::spin_loop();
    }
    let i1 = Instant::now();
    let c1 = read_tsc();
    let ns = i1.duration_since(i0).as_nanos() as u64;
    let cycles = c1.wrapping_sub(c0);
    if cycles == 0 || ns == 0 {
        return None;
    }
    // Implied frequency must be sane (100 MHz .. 10 GHz) or the "TSC"
    // we read is not a cycle counter worth trusting.
    let hz = u128::from(cycles) * 1_000_000_000 / u128::from(ns);
    if !(100_000_000..10_000_000_000u128).contains(&hz) {
        return None;
    }
    Some(((u128::from(ns) << 32) / u128::from(cycles)) as u64)
}

#[cfg(not(target_arch = "x86_64"))]
fn calibrate() -> Option<u64> {
    None
}

/// Does CPUID advertise an invariant TSC?
#[cfg(target_arch = "x86_64")]
fn tsc_usable() -> bool {
    use std::arch::x86_64::__cpuid;
    // CPUID is unprivileged and universally available on x86_64 (the
    // intrinsic is safe); leaves past the reported maximum return junk,
    // so probe the extended range first.
    let max_ext = __cpuid(0x8000_0000).eax;
    if max_ext < 0x8000_0007 {
        return false;
    }
    __cpuid(0x8000_0007).edx & (1 << 8) != 0
}

#[cfg(not(target_arch = "x86_64"))]
fn tsc_usable() -> bool {
    false
}

/// Read the time-stamp counter, unfenced (see the module docs for why
/// the serialized variants are not worth their cost here).
#[cfg(target_arch = "x86_64")]
#[inline]
fn read_tsc() -> u64 {
    // SAFETY: RDTSC is baseline x86_64 (no CPUID gate needed); it has no
    // memory operands and no preconditions beyond ISA support.
    unsafe { std::arch::x86_64::_rdtsc() }
}

#[cfg(not(target_arch = "x86_64"))]
#[inline]
fn read_tsc() -> u64 {
    unreachable!("TSC backend is never selected off x86_64")
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Both constructors; on non-TSC hardware the two collapse to the
    /// same backend and the loop still covers it.
    fn both_backends() -> [TraceClock; 2] {
        [TraceClock::start(), TraceClock::start_instant()]
    }

    #[test]
    fn clock_is_monotonic() {
        for clock in both_backends() {
            let mut prev = clock.now();
            for _ in 0..1000 {
                let t = clock.now();
                assert!(t >= prev, "{} backend went backwards", clock.backend());
                prev = t;
            }
        }
    }

    #[test]
    fn copies_share_the_epoch() {
        for clock in both_backends() {
            let copy = clock;
            std::thread::sleep(std::time::Duration::from_millis(1));
            let a = clock.now();
            let b = copy.now();
            // Both read the same epoch, so they must be within a tight
            // window of each other and both past the sleep.
            assert!(a >= 1_000_000 && b >= 1_000_000);
            assert!(a.abs_diff(b) < 1_000_000_000);
        }
    }

    #[test]
    fn backends_agree_on_elapsed_time() {
        // The TSC fit must track Instant within a few percent over a
        // visible interval; trivially true when both are Instant.
        let clock = TraceClock::start();
        let reference = Instant::now();
        std::thread::sleep(std::time::Duration::from_millis(20));
        let t = clock.now();
        let r = reference.elapsed().as_nanos() as u64;
        let drift = t.abs_diff(r);
        assert!(
            drift < r / 10 + 2_000_000,
            "{} backend drifted: clock={t}ns reference={r}ns",
            clock.backend()
        );
    }

    #[test]
    fn cross_thread_stamps_respect_causality() {
        // Cross-worker comparability: a stamp taken after receiving a
        // message must not precede the stamp taken before sending it.
        for clock in both_backends() {
            let (tx, rx) = std::sync::mpsc::channel::<u64>();
            let join = std::thread::spawn(move || {
                let mut received = Vec::new();
                for before in rx {
                    let after = clock.now();
                    received.push((before, after));
                }
                received
            });
            for _ in 0..200 {
                tx.send(clock.now()).unwrap();
            }
            drop(tx);
            for (before, after) in join.join().unwrap() {
                assert!(
                    after >= before,
                    "{} backend violated causality across threads",
                    clock.backend()
                );
            }
        }
    }

    #[test]
    fn backend_name_is_reported() {
        assert_eq!(TraceClock::start_instant().backend(), "instant");
        let auto = TraceClock::start();
        assert!(auto.backend() == "tsc" || auto.backend() == "instant");
    }
}
