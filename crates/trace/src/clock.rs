//! The run-epoch clock.
//!
//! All events in a trace are stamped with nanoseconds since a single
//! *run epoch* captured when the collector is created. `std::time::Instant`
//! is guaranteed monotonic and — on every platform we target — reads a
//! global clock (CLOCK_MONOTONIC / QueryPerformanceCounter), so
//! timestamps taken on different workers are directly comparable without
//! per-worker offset calibration. Each worker still reads the clock
//! itself (no shared mutable state), so stamping stays wait-free.
//!
//! The simulator bypasses this clock entirely and stamps events with its
//! virtual time via `TraceCollector::emit_at`.

use std::time::Instant;

/// A shared run epoch; `now()` is nanoseconds since it.
#[derive(Debug, Clone, Copy)]
pub struct TraceClock {
    epoch: Instant,
}

impl TraceClock {
    /// Capture the run epoch.
    pub fn start() -> TraceClock {
        TraceClock {
            epoch: Instant::now(),
        }
    }

    /// Nanoseconds elapsed since the epoch. Saturates at `u64::MAX`
    /// (≈ 584 years), which is unreachable in practice.
    #[inline]
    pub fn now(&self) -> u64 {
        let d = self.epoch.elapsed();
        d.as_secs()
            .saturating_mul(1_000_000_000)
            .saturating_add(u64::from(d.subsec_nanos()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let clock = TraceClock::start();
        let mut prev = clock.now();
        for _ in 0..1000 {
            let t = clock.now();
            assert!(t >= prev);
            prev = t;
        }
    }

    #[test]
    fn copies_share_the_epoch() {
        let clock = TraceClock::start();
        let copy = clock;
        std::thread::sleep(std::time::Duration::from_millis(1));
        let a = clock.now();
        let b = copy.now();
        // Both read the same epoch, so they must be within a tight window
        // of each other and both past the sleep.
        assert!(a >= 1_000_000 && b >= 1_000_000);
        assert!(a.abs_diff(b) < 1_000_000_000);
    }
}
