//! The collector: one ring per worker, handed out as per-worker handles,
//! drained into an immutable [`Trace`] once the run has quiesced.

use crate::clock::TraceClock;
use crate::event::{Event, EventKind, RawEvent};
use crate::ring::EventRing;

/// Owns the per-worker rings and the run-epoch clock for one traced run.
///
/// Lifecycle: create with [`TraceCollector::new`], hand each worker its
/// [`WorkerHandle`] (the handles borrow the collector, so workers must be
/// scoped threads or the collector must be shared via `Arc`), then — after
/// every worker has been joined — call [`TraceCollector::finish`] to drain
/// the rings into a [`Trace`].
pub struct TraceCollector {
    rings: Vec<EventRing>,
    clock: TraceClock,
}

/// A single worker's recording endpoint. Cheap to copy into the worker's
/// hot loop; `emit` stamps the shared run-epoch clock and pushes into the
/// worker's own SPSC ring.
#[derive(Clone, Copy)]
pub struct WorkerHandle<'a> {
    ring: &'a EventRing,
    clock: TraceClock,
}

impl WorkerHandle<'_> {
    /// Record `kind` now. Wait-free (clock read + ring push).
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        self.ring.push(RawEvent::encode(self.clock.now(), kind));
    }
}

impl TraceCollector {
    /// A collector with one ring of `capacity` events per worker.
    pub fn new(workers: usize, capacity: usize) -> TraceCollector {
        TraceCollector {
            rings: (0..workers)
                .map(|_| EventRing::with_capacity(capacity))
                .collect(),
            clock: TraceClock::start(),
        }
    }

    /// Number of worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// The recording endpoint for `worker`. Each worker must use only its
    /// own handle — that is what makes the rings single-producer.
    pub fn handle(&self, worker: usize) -> WorkerHandle<'_> {
        WorkerHandle {
            ring: &self.rings[worker],
            clock: self.clock,
        }
    }

    /// Record an event for `worker` at an explicit timestamp. This is the
    /// simulator's entry point (virtual nanoseconds); the threaded runtime
    /// uses [`WorkerHandle::emit`] instead. Not safe to mix with a live
    /// handle on another thread for the same worker.
    pub fn emit_at(&self, worker: usize, ts: u64, kind: EventKind) {
        self.rings[worker].push(RawEvent::encode(ts, kind));
    }

    /// Drain every ring into an immutable trace. Callers must ensure all
    /// workers have quiesced (joined) first; `finish` consumes the
    /// collector so no handle can outlive it.
    pub fn finish(mut self) -> Trace {
        let workers = self
            .rings
            .iter_mut()
            .enumerate()
            .map(|(worker, ring)| WorkerTrace {
                worker,
                dropped: ring.dropped(),
                events: ring.drain(),
            })
            .collect();
        Trace { workers }
    }
}

/// The drained event stream of one worker, oldest-first.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker id (index into the run's worker set).
    pub worker: usize,
    /// Events in emission order.
    pub events: Vec<Event>,
    /// Events lost to ring overflow (0 means the stream is complete).
    pub dropped: u64,
}

/// A complete drained trace: one stream per worker plus the run epoch
/// implied by timestamp zero.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-worker streams, indexed by worker id.
    pub workers: Vec<WorkerTrace>,
}

impl Trace {
    /// Total events across all workers.
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// True when no worker recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to ring overflow across all workers.
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// All events of every worker as `(worker, event)`, merged and sorted
    /// by timestamp (ties broken by worker id, then emission order, which
    /// a stable sort preserves).
    pub fn merged(&self) -> Vec<(usize, Event)> {
        let mut all: Vec<(usize, Event)> = self
            .workers
            .iter()
            .flat_map(|w| w.events.iter().map(move |e| (w.worker, *e)))
            .collect();
        all.sort_by_key(|(w, e)| (e.ts, *w));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;

    #[test]
    fn handles_record_into_their_own_rings() {
        let collector = TraceCollector::new(3, 64);
        collector.handle(0).emit(EventKind::Push);
        collector.handle(2).emit(EventKind::Pop);
        collector.handle(2).emit(EventKind::Pop);
        let trace = collector.finish();
        assert_eq!(trace.workers[0].events.len(), 1);
        assert_eq!(trace.workers[1].events.len(), 0);
        assert_eq!(trace.workers[2].events.len(), 2);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_dropped(), 0);
    }

    #[test]
    fn emit_at_uses_the_given_timestamp() {
        let collector = TraceCollector::new(1, 64);
        collector.emit_at(0, 12345, EventKind::FakeTask { depth: 2 });
        let trace = collector.finish();
        assert_eq!(trace.workers[0].events[0].ts, 12345);
    }

    #[test]
    fn merged_is_sorted_by_timestamp() {
        let collector = TraceCollector::new(2, 64);
        collector.emit_at(0, 30, EventKind::Push);
        collector.emit_at(1, 10, EventKind::Pop);
        collector.emit_at(0, 20, EventKind::Push);
        let merged = collector.finish().merged();
        let ts: Vec<u64> = merged.iter().map(|(_, e)| e.ts).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn concurrent_workers_then_finish() {
        let collector = std::sync::Arc::new(TraceCollector::new(4, 4096));
        let mut joins = Vec::new();
        for w in 0..4 {
            let c = std::sync::Arc::clone(&collector);
            joins.push(std::thread::spawn(move || {
                let h = c.handle(w);
                for i in 0..1000 {
                    h.emit(EventKind::Spawn { depth: i as u32 });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let collector = std::sync::Arc::try_unwrap(collector)
            .ok()
            .expect("sole owner");
        let trace = collector.finish();
        assert_eq!(trace.len(), 4000);
        assert_eq!(trace.total_dropped(), 0);
        for w in &trace.workers {
            assert!(w.events.windows(2).all(|p| p[0].ts <= p[1].ts));
        }
    }
}
