//! The collector: one ring per worker, handed out as per-worker handles,
//! drained into an immutable [`Trace`] once the run has quiesced.
//!
//! The collector also owns the run's **category filter** — one
//! `AtomicU64` holding the effective mask (runtime `Config::trace_filter`
//! ∧ [`compiled_mask`], with the [`Category::Job`] bit forced on so
//! job-server epoch brackets always survive) — and its **sampling rate**
//! (`trace_sample`, applied only to [`Category::SAMPLED_MASK`]
//! categories). Handles check the filter with a single `Relaxed` load
//! *before* an event is even constructed (see
//! [`WorkerHandle::enabled`]); sampling countdowns live producer-private
//! inside each ring, so neither mechanism adds shared-write traffic to
//! the hot path.

use crate::clock::TraceClock;
use crate::event::{Event, EventKind, RawEvent};
use crate::filter::{compiled_mask, Category};
use crate::ring::EventRing;
use crate::sync::{AtomicU64, Ordering};

/// Owns the per-worker rings, the run-epoch clock and the category
/// filter for one traced run.
///
/// Lifecycle: create with [`TraceCollector::new`] (or
/// [`TraceCollector::with_options`] for a filter/sampling setup), hand
/// each worker its [`WorkerHandle`] (the handles borrow the collector,
/// so workers must be scoped threads or the collector must be shared via
/// `Arc`), then — after every worker has been joined — call
/// [`TraceCollector::finish`] to drain the rings into a [`Trace`].
pub struct TraceCollector {
    rings: Vec<EventRing>,
    clock: TraceClock,
    /// Effective category mask; runtime-adjustable via `set_filter`.
    filter: AtomicU64,
    /// 1-in-N rate for [`Category::SAMPLED_MASK`] categories (1 = all).
    sample: u32,
    /// Serialises mid-run readers ([`TraceCollector::drain_published`])
    /// against each other — the rings' consumer cursors are
    /// single-consumer state.
    reader: std::sync::Mutex<()>,
}

/// A single worker's recording endpoint. Cheap to copy into the worker's
/// hot loop; `emit` stamps the shared run-epoch clock and pushes into the
/// worker's own SPSC ring.
#[derive(Clone, Copy)]
pub struct WorkerHandle<'a> {
    ring: &'a EventRing,
    clock: TraceClock,
    filter: &'a AtomicU64,
    sample: u32,
}

impl WorkerHandle<'_> {
    /// Is `cat` currently recorded? One `Relaxed` load; when the
    /// category is compiled out this constant-folds to `false` and the
    /// caller's whole emit site is dead-code-eliminated. Call this
    /// *before* constructing an [`EventKind`] — that is the entire point
    /// of the filter.
    #[inline]
    pub fn enabled(&self, cat: Category) -> bool {
        compiled_mask() & cat.bit() != 0 && self.filter.load(Ordering::Relaxed) & cat.bit() != 0
    }

    /// Record `kind` now if its category passes the filter and — for
    /// sampled categories — the 1-in-N countdown. Wait-free (mask load +
    /// clock read + ring push).
    #[inline]
    pub fn emit(&self, kind: EventKind) {
        let cat = kind.category();
        if self.enabled(cat) {
            self.emit_in(cat, kind);
        }
    }

    /// Filter-free emission for call sites that already checked
    /// [`WorkerHandle::enabled`] for `cat` (the engine's `tev!` macro,
    /// which names the category statically so the event expression is
    /// only evaluated behind the mask check).
    #[inline]
    pub fn emit_in(&self, cat: Category, kind: EventKind) {
        debug_assert_eq!(kind.category(), cat);
        if self.sample > 1
            && cat.bit() & Category::SAMPLED_MASK != 0
            && !self.ring.sample_tick(cat, self.sample)
        {
            return;
        }
        self.ring.push(RawEvent::encode(self.clock.now(), kind));
    }
}

impl TraceCollector {
    /// A collector with one ring of `capacity` events per worker, all
    /// categories enabled and no sampling.
    pub fn new(workers: usize, capacity: usize) -> TraceCollector {
        TraceCollector::with_options(workers, capacity, u64::MAX, 1)
    }

    /// A collector with a runtime category `filter` (a
    /// [`Category`]-bitmask; `u64::MAX` = everything) and a 1-in-`sample`
    /// rate for the hot categories (`0`/`1` = record every event).
    ///
    /// The stored mask is `filter` ∧ [`compiled_mask`] with
    /// [`Category::Job`] forced on (job-epoch brackets must survive for
    /// [`Trace::split_jobs`]). Creating the first collector in the
    /// process also runs the one-time TSC calibration handshake — see
    /// [`TraceClock`].
    pub fn with_options(
        workers: usize,
        capacity: usize,
        filter: u64,
        sample: u32,
    ) -> TraceCollector {
        TraceCollector {
            rings: (0..workers)
                .map(|_| EventRing::with_capacity(capacity))
                .collect(),
            clock: TraceClock::start(),
            filter: AtomicU64::new(effective_mask(filter)),
            sample: sample.max(1),
            reader: std::sync::Mutex::new(()),
        }
    }

    /// Number of worker rings.
    pub fn workers(&self) -> usize {
        self.rings.len()
    }

    /// The current effective category mask.
    pub fn filter(&self) -> u64 {
        self.filter.load(Ordering::Relaxed)
    }

    /// The 1-in-N sampling rate for hot categories.
    pub fn sample(&self) -> u32 {
        self.sample
    }

    /// The run-epoch clock (exposed for bench reporting of the active
    /// backend).
    pub fn clock(&self) -> TraceClock {
        self.clock
    }

    /// Swap the runtime category mask mid-run (subject to the same
    /// clamping as [`TraceCollector::with_options`]). `Relaxed` on both
    /// sides: a worker may record a few more events of a just-masked
    /// category while the store propagates, which only shifts *when* the
    /// filter cut takes effect, never what a recorded event means.
    pub fn set_filter(&self, filter: u64) {
        self.filter.store(effective_mask(filter), Ordering::Relaxed);
    }

    /// The recording endpoint for `worker`. Each worker must use only its
    /// own handle — that is what makes the rings single-producer.
    pub fn handle(&self, worker: usize) -> WorkerHandle<'_> {
        WorkerHandle {
            ring: &self.rings[worker],
            clock: self.clock,
            filter: &self.filter,
            sample: self.sample,
        }
    }

    /// Record an event for `worker` at an explicit timestamp. This is the
    /// simulator's entry point (virtual nanoseconds); the threaded runtime
    /// uses [`WorkerHandle::emit`] instead. Not safe to mix with a live
    /// handle on another thread for the same worker.
    ///
    /// Respects the category filter but **not** sampling: virtual-time
    /// streams are deterministic and cheap, and keeping them exhaustive
    /// preserves exact real-vs-sim diffing at any sampling rate.
    pub fn emit_at(&self, worker: usize, ts: u64, kind: EventKind) {
        if self.filter.load(Ordering::Relaxed) & kind.category().bit() != 0 {
            self.rings[worker].push(RawEvent::encode(ts, kind));
        }
    }

    /// Events `worker` has published so far and not yet consumed — the
    /// most a concurrent [`TraceCollector::drain_published`] could
    /// return for that ring (it may return up to one block less near
    /// overflow; see [`EventRing::drain_published`]).
    pub fn published_len(&self, worker: usize) -> usize {
        self.rings[worker].published_len()
    }

    /// Drain every ring's *published* events into a trace snapshot while
    /// the workers are still running. Wait-free for the producers; the
    /// per-ring dropped counts are deferred to [`TraceCollector::finish`]
    /// (they read producer-private state, so a mid-run snapshot reports
    /// 0 there). Multiple reader threads are serialised internally;
    /// events handed out here never reappear in a later snapshot or in
    /// the final [`TraceCollector::finish`] trace.
    pub fn drain_published(&self) -> Trace {
        let _guard = self.reader.lock().unwrap();
        let workers = self
            .rings
            .iter()
            .enumerate()
            .map(|(worker, ring)| WorkerTrace {
                worker,
                dropped: 0,
                events: ring.drain_published(),
            })
            .collect();
        Trace {
            workers,
            filter: self.filter.load(Ordering::Relaxed),
            sample: self.sample,
            clock_backend: self.clock.backend(),
        }
    }

    /// Drain every ring into an immutable trace. Callers must ensure all
    /// workers have quiesced (joined) first; `finish` consumes the
    /// collector so no handle can outlive it.
    pub fn finish(mut self) -> Trace {
        let workers = self
            .rings
            .iter_mut()
            .enumerate()
            .map(|(worker, ring)| WorkerTrace {
                worker,
                dropped: ring.dropped(),
                events: ring.drain(),
            })
            .collect();
        Trace {
            workers,
            filter: self.filter.load(Ordering::Relaxed),
            sample: self.sample,
            clock_backend: self.clock.backend(),
        }
    }
}

/// Clamp a requested runtime mask to the effective one.
fn effective_mask(filter: u64) -> u64 {
    (filter & compiled_mask()) | Category::Job.bit()
}

/// The drained event stream of one worker, oldest-first.
#[derive(Debug, Clone)]
pub struct WorkerTrace {
    /// Worker id (index into the run's worker set).
    pub worker: usize,
    /// Events in emission order.
    pub events: Vec<Event>,
    /// Events lost to ring overflow (0 means the stream is complete).
    pub dropped: u64,
}

/// A complete drained trace: one stream per worker plus the run epoch
/// implied by timestamp zero, and the filter/sampling setup it was
/// recorded under (consumers like [`validate`](crate::validate) use
/// those to know which counters the trace can be exact about).
#[derive(Debug, Clone)]
pub struct Trace {
    /// Per-worker streams, indexed by worker id.
    pub workers: Vec<WorkerTrace>,
    /// The effective category mask the run recorded under.
    pub filter: u64,
    /// The 1-in-N sampling rate for [`Category::SAMPLED_MASK`]
    /// categories (1 = exhaustive).
    pub sample: u32,
    /// Which clock stamped the events: `"tsc"`, `"instant"`, or
    /// `"virtual"` for simulator traces.
    pub clock_backend: &'static str,
}

impl Trace {
    /// An exhaustive trace (all categories, no sampling) from bare
    /// per-worker streams. Handy for tests and for consumers that
    /// assemble traces by hand.
    pub fn from_workers(workers: Vec<WorkerTrace>) -> Trace {
        Trace {
            workers,
            filter: u64::MAX,
            sample: 1,
            clock_backend: "virtual",
        }
    }

    /// Is `cat` recorded in this trace (its filter bit set)?
    pub fn records(&self, cat: Category) -> bool {
        self.filter & cat.bit() != 0
    }

    /// Is `cat` subject to 1-in-N sampling in this trace (so its event
    /// counts are lower bounds, not exact)?
    pub fn sampled(&self, cat: Category) -> bool {
        self.sample > 1 && cat.bit() & Category::SAMPLED_MASK != 0
    }

    /// Total events across all workers.
    pub fn len(&self) -> usize {
        self.workers.iter().map(|w| w.events.len()).sum()
    }

    /// True when no worker recorded anything.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total events lost to ring overflow across all workers.
    pub fn total_dropped(&self) -> u64 {
        self.workers.iter().map(|w| w.dropped).sum()
    }

    /// All events of every worker as `(worker, event)`, merged and sorted
    /// by timestamp (ties broken by worker id, then emission order, which
    /// a stable sort preserves).
    pub fn merged(&self) -> Vec<(usize, Event)> {
        let mut all: Vec<(usize, Event)> = self
            .workers
            .iter()
            .flat_map(|w| w.events.iter().map(move |e| (w.worker, *e)))
            .collect();
        all.sort_by_key(|(w, e)| (e.ts, *w));
        all
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventKind;
    use crate::filter::compiled_mask;

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn handles_record_into_their_own_rings() {
        let collector = TraceCollector::new(3, 64);
        collector.handle(0).emit(EventKind::Push);
        collector.handle(2).emit(EventKind::Pop);
        collector.handle(2).emit(EventKind::Pop);
        let trace = collector.finish();
        assert_eq!(trace.workers[0].events.len(), 1);
        assert_eq!(trace.workers[1].events.len(), 0);
        assert_eq!(trace.workers[2].events.len(), 2);
        assert_eq!(trace.len(), 3);
        assert_eq!(trace.total_dropped(), 0);
        assert_eq!(trace.filter, compiled_mask());
        assert_eq!(trace.sample, 1);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn emit_at_uses_the_given_timestamp() {
        let collector = TraceCollector::new(1, 64);
        collector.emit_at(0, 12345, EventKind::FakeTask { depth: 2 });
        let trace = collector.finish();
        assert_eq!(trace.workers[0].events[0].ts, 12345);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn merged_is_sorted_by_timestamp() {
        let collector = TraceCollector::new(2, 64);
        collector.emit_at(0, 30, EventKind::Push);
        collector.emit_at(1, 10, EventKind::Pop);
        collector.emit_at(0, 20, EventKind::Push);
        let merged = collector.finish().merged();
        let ts: Vec<u64> = merged.iter().map(|(_, e)| e.ts).collect();
        assert_eq!(ts, vec![10, 20, 30]);
    }

    #[test]
    fn masked_categories_emit_nothing() {
        let collector =
            TraceCollector::with_options(1, 64, Category::Steal.bit() | Category::Fsm.bit(), 1);
        let h = collector.handle(0);
        assert!(h.enabled(Category::Steal));
        assert!(!h.enabled(Category::Deque));
        h.emit(EventKind::Push); // masked
        h.emit(EventKind::Spawn { depth: 0 }); // masked
        h.emit(EventKind::StealOk { victim: 0 }); // recorded
        let trace = collector.finish();
        assert_eq!(trace.len(), 1);
        assert_eq!(
            trace.workers[0].events[0].kind,
            EventKind::StealOk { victim: 0 }
        );
        assert!(trace.records(Category::Steal));
        assert!(!trace.records(Category::Deque));
    }

    #[test]
    fn job_brackets_survive_any_filter() {
        let collector = TraceCollector::with_options(1, 64, 0, 1);
        collector
            .handle(0)
            .emit(EventKind::JobBegin { job: 1, slot: 0 });
        collector.emit_at(0, 5, EventKind::JobEnd { job: 1 });
        let trace = collector.finish();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn set_filter_swaps_the_mask_mid_run() {
        let collector = TraceCollector::new(1, 64);
        let h = collector.handle(0);
        h.emit(EventKind::Push);
        collector.set_filter(Category::Steal.bit());
        h.emit(EventKind::Push); // now masked
        h.emit(EventKind::StealOk { victim: 0 });
        let trace = collector.finish();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn sampling_keeps_one_in_n_of_hot_categories() {
        let collector = TraceCollector::with_options(1, 1 << 12, u64::MAX, 4);
        let h = collector.handle(0);
        for _ in 0..100 {
            h.emit(EventKind::Push);
        }
        for _ in 0..10 {
            h.emit(EventKind::StealOk { victim: 0 }); // Steal is never sampled
        }
        let trace = collector.finish();
        assert!(trace.sampled(Category::Deque));
        assert!(!trace.sampled(Category::Steal));
        let pushes = trace.workers[0]
            .events
            .iter()
            .filter(|e| e.kind == EventKind::Push)
            .count();
        let steals = trace.workers[0].events.len() - pushes;
        assert_eq!(pushes, 25);
        assert_eq!(steals, 10);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn emit_at_respects_the_filter_but_not_sampling() {
        let collector = TraceCollector::with_options(1, 256, !Category::Deque.bit(), 8);
        for i in 0..20 {
            collector.emit_at(0, i, EventKind::Push); // masked
            collector.emit_at(0, i, EventKind::Spawn { depth: 0 }); // unsampled in virtual time
        }
        let trace = collector.finish();
        assert_eq!(trace.len(), 20);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn drain_published_snapshots_without_losing_events() {
        let collector = TraceCollector::new(2, 1 << 12);
        for i in 0..200 {
            collector.emit_at(0, i, EventKind::Push);
            collector.emit_at(1, i, EventKind::Pop);
        }
        let announced = collector.published_len(0);
        let snap = collector.drain_published();
        assert_eq!(snap.workers[0].events.len(), announced);
        assert!(snap.workers[0].events.len() <= 200);
        assert_eq!(snap.filter, collector.filter());
        // Snapshot + final trace partition the stream exactly.
        let rest = collector.finish();
        for w in 0..2 {
            assert_eq!(
                snap.workers[w].events.len() + rest.workers[w].events.len(),
                200
            );
            assert_eq!(rest.workers[w].dropped, 0);
        }
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn concurrent_workers_then_finish() {
        let collector = std::sync::Arc::new(TraceCollector::new(4, 4096));
        let mut joins = Vec::new();
        for w in 0..4 {
            let c = std::sync::Arc::clone(&collector);
            joins.push(std::thread::spawn(move || {
                let h = c.handle(w);
                for i in 0..1000 {
                    h.emit(EventKind::Spawn { depth: i as u32 });
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        let collector = std::sync::Arc::try_unwrap(collector)
            .ok()
            .expect("sole owner");
        let trace = collector.finish();
        assert_eq!(trace.len(), 4000);
        assert_eq!(trace.total_dropped(), 0);
        for w in &trace.workers {
            assert!(w.events.windows(2).all(|p| p[0].ts <= p[1].ts));
        }
    }
}
