//! Derived metrics over a drained [`Trace`]: aggregate event counts, the
//! steal-provenance tree, per-state dwell-time totals, and steal-latency /
//! deque-occupancy histograms.

use crate::collector::Trace;
use crate::event::EventKind;
use std::collections::BTreeMap;

// ---------------------------------------------------------------------------
// Aggregate counts
// ---------------------------------------------------------------------------

/// Per-kind event totals, aggregated over all workers. The fields mirror
/// the `RunStats` counters they must equal (see [`crate::validate`]).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TraceCounts {
    /// `Spawn` events (== `tasks_created`).
    pub spawns: u64,
    /// `Push` events (regular deque pushes).
    pub pushes: u64,
    /// `Pop` events (regular owner pops).
    pub pops: u64,
    /// `PopConflict` events.
    pub pop_conflicts: u64,
    /// `StealAttempt` events.
    pub steal_attempts: u64,
    /// `StealOk` events (== `steals_ok`).
    pub steals_ok: u64,
    /// `StealEmpty` events (== `steals_failed`).
    pub steals_empty: u64,
    /// `StealDup` events (the thief's share of `dup_extractions`).
    pub steals_dup: u64,
    /// `FakeTask` events (== `fake_tasks`).
    pub fake_tasks: u64,
    /// `Fsm` transition events.
    pub fsm_transitions: u64,
    /// `SpecialBegin` events (== `special_tasks`).
    pub special_begins: u64,
    /// `SpecialPush` events (special deque pushes).
    pub special_pushes: u64,
    /// `SpecialConsume { reclaimed: true }` events.
    pub special_reclaimed: u64,
    /// `SpecialConsume { reclaimed: false }` events (child was stolen).
    pub special_lost: u64,
    /// `NeedTaskSignal` events.
    pub need_task_signals: u64,
    /// `NeedTaskAck` events.
    pub need_task_acks: u64,
    /// `WsRequest` events.
    pub ws_requests: u64,
    /// `WsDeposit` events.
    pub ws_deposits: u64,
    /// `WsTake` events.
    pub ws_takes: u64,
    /// `CopySaved` events (== `workspace_copies_saved`).
    pub copies_saved: u64,
    /// `SyncSuspend` events (== `suspensions`).
    pub suspends: u64,
    /// `SyncResume` events.
    pub resumes: u64,
    /// `CutoffTune` events (== `cutoff_adjustments`).
    pub cutoff_tunes: u64,
    /// `ThresholdTune` events (== `threshold_adjustments`).
    pub threshold_tunes: u64,
}

impl TraceCounts {
    /// Tally one worker's (or the whole trace's) event stream.
    pub fn from_events<'a, I: IntoIterator<Item = &'a crate::event::Event>>(events: I) -> Self {
        let mut c = TraceCounts::default();
        for ev in events {
            match ev.kind {
                EventKind::Spawn { .. } => c.spawns += 1,
                EventKind::Push => c.pushes += 1,
                EventKind::Pop => c.pops += 1,
                EventKind::PopConflict => c.pop_conflicts += 1,
                EventKind::StealAttempt { .. } => c.steal_attempts += 1,
                EventKind::StealOk { .. } => c.steals_ok += 1,
                EventKind::StealEmpty { .. } => c.steals_empty += 1,
                EventKind::StealDup { .. } => c.steals_dup += 1,
                EventKind::FakeTask { .. } => c.fake_tasks += 1,
                EventKind::Fsm { .. } => c.fsm_transitions += 1,
                EventKind::SpecialBegin { .. } => c.special_begins += 1,
                EventKind::SpecialEnd => {}
                EventKind::SpecialPush => c.special_pushes += 1,
                EventKind::SpecialConsume { reclaimed: true } => c.special_reclaimed += 1,
                EventKind::SpecialConsume { reclaimed: false } => c.special_lost += 1,
                EventKind::NeedTaskSignal { .. } => c.need_task_signals += 1,
                EventKind::NeedTaskAck => c.need_task_acks += 1,
                EventKind::WsRequest { .. } => c.ws_requests += 1,
                EventKind::WsDeposit => c.ws_deposits += 1,
                EventKind::WsTake => c.ws_takes += 1,
                EventKind::CopySaved => c.copies_saved += 1,
                EventKind::SyncSuspend => c.suspends += 1,
                EventKind::SyncResume => c.resumes += 1,
                // Job markers delimit epochs; they mirror no RunStats
                // counter, so the tally ignores them.
                EventKind::JobBegin { .. } | EventKind::JobEnd { .. } => {}
                EventKind::CutoffTune { .. } => c.cutoff_tunes += 1,
                EventKind::ThresholdTune { .. } => c.threshold_tunes += 1,
            }
        }
        c
    }

    /// Tally the whole trace.
    pub fn from_trace(trace: &Trace) -> Self {
        Self::from_events(trace.workers.iter().flat_map(|w| w.events.iter()))
    }
}

// ---------------------------------------------------------------------------
// Histograms
// ---------------------------------------------------------------------------

/// A power-of-two bucketed histogram: bucket `i` counts samples in
/// `[2^(i-1), 2^i)` (bucket 0 counts zeros and ones).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Histogram {
    buckets: Vec<u64>,
    /// Number of recorded samples.
    pub count: u64,
    /// Sum of recorded samples.
    pub sum: u64,
    /// Largest recorded sample.
    pub max: u64,
}

impl Histogram {
    /// Record one sample.
    pub fn record(&mut self, sample: u64) {
        let bucket = (u64::BITS - sample.leading_zeros()) as usize;
        if self.buckets.len() <= bucket {
            self.buckets.resize(bucket + 1, 0);
        }
        self.buckets[bucket] += 1;
        self.count += 1;
        self.sum += sample;
        self.max = self.max.max(sample);
    }

    /// `(upper_bound_exclusive, count)` for each non-empty bucket.
    pub fn buckets(&self) -> Vec<(u64, u64)> {
        self.buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| (1u64 << i, *n))
            .collect()
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }
}

// ---------------------------------------------------------------------------
// Steal provenance
// ---------------------------------------------------------------------------

/// One successful steal: `thief` took work from `victim` at `ts`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealEdge {
    /// Nanoseconds since the run epoch.
    pub ts: u64,
    /// The stealing worker.
    pub thief: usize,
    /// The robbed worker.
    pub victim: usize,
    /// Index of this node's parent in [`StealTree::edges`], or `None`
    /// for steals fed directly by the victim's root-descended work.
    pub parent: Option<usize>,
}

/// The steal-provenance forest: every successful steal, each linked to
/// the steal that put the stolen subtree on the victim in the first
/// place (the victim's most recent earlier `StealOk`, if any).
#[derive(Debug, Clone, Default)]
pub struct StealTree {
    /// All successful steals in timestamp order.
    pub edges: Vec<StealEdge>,
}

impl StealTree {
    /// Build the forest from a trace.
    ///
    /// Provenance rule: the parent of a steal by `T` from `V` at time `t`
    /// is `V`'s latest `StealOk` before `t` — the theft that gave `V`
    /// the subtree `T` is now carving up. With no such steal, `V` was
    /// working on root-descended tasks and the edge is a forest root.
    pub fn build(trace: &Trace) -> StealTree {
        let mut edges: Vec<StealEdge> = trace
            .workers
            .iter()
            .flat_map(|w| {
                w.events.iter().filter_map(move |e| match e.kind {
                    EventKind::StealOk { victim } => Some(StealEdge {
                        ts: e.ts,
                        thief: w.worker,
                        victim: victim as usize,
                        parent: None,
                    }),
                    _ => None,
                })
            })
            .collect();
        edges.sort_by_key(|e| (e.ts, e.thief));
        // latest_by_thief[w] = index of w's most recent StealOk edge.
        let mut latest_by_thief: BTreeMap<usize, usize> = BTreeMap::new();
        for (i, edge) in edges.iter_mut().enumerate() {
            edge.parent = latest_by_thief.get(&edge.victim).copied();
            latest_by_thief.insert(edge.thief, i);
        }
        StealTree { edges }
    }

    /// Number of forest roots (steals of root-descended work).
    pub fn roots(&self) -> usize {
        self.edges.iter().filter(|e| e.parent.is_none()).count()
    }

    /// Depth of the deepest provenance chain (a single steal has depth 1).
    pub fn max_depth(&self) -> usize {
        let mut depth = vec![0usize; self.edges.len()];
        let mut max = 0;
        for i in 0..self.edges.len() {
            // Parents always precede children in the sorted order.
            depth[i] = 1 + self.edges[i].parent.map_or(0, |p| depth[p]);
            max = max.max(depth[i]);
        }
        max
    }

    /// Render as an indented text tree (one line per steal).
    pub fn render(&self) -> String {
        fn rec(
            tree: &StealTree,
            children: &[Vec<usize>],
            i: usize,
            depth: usize,
            out: &mut String,
        ) {
            let e = &tree.edges[i];
            out.push_str(&"  ".repeat(depth));
            out.push_str(&format!(
                "worker {} stole from worker {} @ {} ns\n",
                e.thief, e.victim, e.ts
            ));
            for &c in &children[i] {
                rec(tree, children, c, depth + 1, out);
            }
        }
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); self.edges.len()];
        let mut roots = Vec::new();
        for (i, e) in self.edges.iter().enumerate() {
            match e.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut out = String::new();
        for r in roots {
            rec(self, &children, r, 0, &mut out);
        }
        out
    }
}

// ---------------------------------------------------------------------------
// Dwell times
// ---------------------------------------------------------------------------

/// Per-worker time-in-state totals over the span of the worker's stream.
///
/// States are the coarse worker phases the trace can bracket exactly:
/// special sections, stolen-continuation (slow) execution and sync
/// waits; everything else is `work` (fast/check/fast_2/sequence code,
/// plus steal-loop spinning between `idle→slow` brackets on workers that
/// never steal — the trace cannot split those without per-node events).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Dwell {
    /// ns inside `SpecialBegin..SpecialEnd` spans.
    pub special_ns: u64,
    /// ns inside `idle→slow .. slow→idle` brackets.
    pub slow_ns: u64,
    /// ns inside `SyncSuspend..SyncResume` spans.
    pub sync_wait_ns: u64,
    /// Remaining ns of the worker's active span.
    pub work_ns: u64,
    /// Total span (last ts − first ts).
    pub span_ns: u64,
}

/// Compute [`Dwell`] per worker. Unclosed spans (a worker that never
/// resumed) are closed at the worker's final timestamp.
pub fn dwell_times(trace: &Trace) -> Vec<Dwell> {
    use crate::event::FsmState;
    trace
        .workers
        .iter()
        .map(|w| {
            let mut d = Dwell::default();
            let (first, last) = match (w.events.first(), w.events.last()) {
                (Some(f), Some(l)) => (f.ts, l.ts),
                _ => return d,
            };
            d.span_ns = last - first;
            let mut special_open: Option<u64> = None;
            let mut slow_open: Option<u64> = None;
            let mut sync_open: Option<u64> = None;
            for ev in &w.events {
                match ev.kind {
                    EventKind::SpecialBegin { .. } => special_open = Some(ev.ts),
                    EventKind::SpecialEnd => {
                        if let Some(s) = special_open.take() {
                            d.special_ns += ev.ts - s;
                        }
                    }
                    EventKind::SyncSuspend => sync_open = Some(ev.ts),
                    EventKind::SyncResume => {
                        if let Some(s) = sync_open.take() {
                            d.sync_wait_ns += ev.ts - s;
                        }
                    }
                    EventKind::Fsm {
                        from: FsmState::Idle,
                        to: FsmState::Slow,
                        ..
                    } => slow_open = Some(ev.ts),
                    EventKind::Fsm {
                        from: FsmState::Slow,
                        to: FsmState::Idle,
                        ..
                    } => {
                        if let Some(s) = slow_open.take() {
                            d.slow_ns += ev.ts - s;
                        }
                    }
                    _ => {}
                }
            }
            // Close spans left open at the worker's final event.
            if let Some(s) = special_open {
                d.special_ns += last - s;
            }
            if let Some(s) = slow_open {
                d.slow_ns += last - s;
            }
            if let Some(s) = sync_open {
                d.sync_wait_ns += last - s;
            }
            // Sync waits nest inside special sections, so special_ns
            // already covers them; work is the rest of the span.
            d.work_ns = d.span_ns.saturating_sub(d.special_ns + d.slow_ns);
            d
        })
        .collect()
}

/// Steal latency per worker: time from each `StealAttempt` to the next
/// steal outcome (`StealOk`/`StealEmpty`/`StealDup`) in the same
/// worker's stream.
pub fn steal_latency(trace: &Trace) -> Histogram {
    let mut h = Histogram::default();
    for w in &trace.workers {
        let mut pending: Option<u64> = None;
        for ev in &w.events {
            match ev.kind {
                EventKind::StealAttempt { .. } => pending = Some(ev.ts),
                EventKind::StealOk { .. }
                | EventKind::StealEmpty { .. }
                | EventKind::StealDup { .. } => {
                    if let Some(t0) = pending.take() {
                        h.record(ev.ts - t0);
                    }
                }
                _ => {}
            }
        }
    }
    h
}

/// Deque occupancy seen across the run: replays each worker's deque from
/// the merged event order (owner pushes/pops plus thieves' `StealOk`s
/// against that worker) and records the occupancy after every change.
///
/// Cross-worker timestamps are taken *after* the underlying atomic op,
/// so the replayed counter can transiently dip negative when a thief's
/// stamp lands before the victim's; the replay clamps at zero, which
/// keeps the histogram a faithful *approximation* (exact at 1 thread).
pub fn deque_occupancy(trace: &Trace) -> Histogram {
    let mut h = Histogram::default();
    let merged = trace.merged();
    let mut depth: BTreeMap<usize, i64> = BTreeMap::new();
    for (w, ev) in merged {
        let (target, delta): (usize, i64) = match ev.kind {
            EventKind::Push | EventKind::SpecialPush => (w, 1),
            EventKind::Pop | EventKind::SpecialConsume { reclaimed: true } => (w, -1),
            EventKind::StealOk { victim } => (victim as usize, -1),
            _ => continue,
        };
        let d = depth.entry(target).or_insert(0);
        *d = (*d + delta).max(0);
        h.record(*d as u64);
    }
    h
}

// ---------------------------------------------------------------------------
// Latency CDFs
// ---------------------------------------------------------------------------

/// An exact empirical distribution over nanosecond samples, for the
/// per-op latency reporting the bucketed [`Histogram`] is too coarse
/// for. Stores every sample (sorted), so use it for per-run analysis,
/// not on the hot path.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cdf {
    samples: Vec<u64>,
}

impl Cdf {
    /// Build from raw samples (any order).
    pub fn from_samples(mut samples: Vec<u64>) -> Cdf {
        samples.sort_unstable();
        Cdf { samples }
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples.len()
    }

    /// True when no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// The `q`-quantile (nearest-rank on the sorted samples), 0 when
    /// empty. `q` is clamped to `[0, 1]`.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.samples.is_empty() {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = (q * self.samples.len() as f64).ceil() as usize;
        self.samples[rank.saturating_sub(1).min(self.samples.len() - 1)]
    }

    /// Median.
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile.
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile.
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Largest sample, 0 when empty.
    pub fn max(&self) -> u64 {
        self.samples.last().copied().unwrap_or(0)
    }

    /// Mean sample, or 0 with no samples.
    pub fn mean(&self) -> f64 {
        if self.samples.is_empty() {
            0.0
        } else {
            self.samples.iter().sum::<u64>() as f64 / self.samples.len() as f64
        }
    }
}

/// Per-op steal latency as an exact CDF: time from each `StealAttempt`
/// to the next steal outcome (`StealOk`/`StealEmpty`/`StealDup`) in the
/// same worker's stream — the same pairing as [`steal_latency`], kept as
/// individual samples for p50/p90/p99 reporting.
pub fn steal_latency_cdf(trace: &Trace) -> Cdf {
    let mut samples = Vec::new();
    for w in &trace.workers {
        let mut pending: Option<u64> = None;
        for ev in &w.events {
            match ev.kind {
                EventKind::StealAttempt { .. } => pending = Some(ev.ts),
                EventKind::StealOk { .. }
                | EventKind::StealEmpty { .. }
                | EventKind::StealDup { .. } => {
                    if let Some(t0) = pending.take() {
                        samples.push(ev.ts - t0);
                    }
                }
                _ => {}
            }
        }
    }
    Cdf::from_samples(samples)
}

/// `need_task` → delivery response time as an exact CDF: from a thief
/// raising a victim's `need_task` flag (`NeedTaskSignal`) to that same
/// thief's next successful steal (`StealOk`, from any victim — the
/// special task the signal provokes is stealable by anyone, and what the
/// starving thief cares about is *getting work*). Thieves that signal
/// and never steal again contribute no sample.
pub fn response_time_cdf(trace: &Trace) -> Cdf {
    let mut samples = Vec::new();
    for w in &trace.workers {
        let mut pending: Option<u64> = None;
        for ev in &w.events {
            match ev.kind {
                EventKind::NeedTaskSignal { .. } => {
                    // A thief may re-signal (a new victim) before any
                    // delivery; the wait began at the *first* signal.
                    pending = pending.or(Some(ev.ts));
                }
                EventKind::StealOk { .. } => {
                    if let Some(t0) = pending.take() {
                        samples.push(ev.ts - t0);
                    }
                }
                _ => {}
            }
        }
    }
    Cdf::from_samples(samples)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::event::{EventKind, FsmState};

    #[test]
    fn histogram_buckets_and_moments() {
        let mut h = Histogram::default();
        for s in [0, 1, 2, 3, 4, 1000] {
            h.record(s);
        }
        assert_eq!(h.count, 6);
        assert_eq!(h.sum, 1010);
        assert_eq!(h.max, 1000);
        // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3; 1000 → bucket 10.
        assert_eq!(h.buckets(), vec![(1, 1), (2, 1), (4, 2), (8, 1), (1024, 1)]);
        assert!((h.mean() - 1010.0 / 6.0).abs() < 1e-9);
    }

    #[test]
    fn provenance_links_to_latest_prior_steal() {
        let c = TraceCollector::new(3, 64);
        // w1 steals from w0 (root), then w2 steals from w1 (child of the
        // first edge), then w0 steals from w2 (child of the second).
        c.emit_at(1, 10, EventKind::StealOk { victim: 0 });
        c.emit_at(2, 20, EventKind::StealOk { victim: 1 });
        c.emit_at(0, 30, EventKind::StealOk { victim: 2 });
        let tree = StealTree::build(&c.finish());
        assert_eq!(tree.edges.len(), 3);
        assert_eq!(tree.edges[0].parent, None);
        assert_eq!(tree.edges[1].parent, Some(0));
        assert_eq!(tree.edges[2].parent, Some(1));
        assert_eq!(tree.roots(), 1);
        assert_eq!(tree.max_depth(), 3);
        let rendered = tree.render();
        assert!(rendered.contains("worker 1 stole from worker 0 @ 10 ns"));
        assert!(rendered.contains("    worker 0 stole from worker 2 @ 30 ns"));
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn dwell_brackets_spans() {
        let c = TraceCollector::new(1, 64);
        c.emit_at(0, 0, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 100, EventKind::SpecialBegin { depth: 2 });
        c.emit_at(0, 300, EventKind::SpecialEnd);
        c.emit_at(
            0,
            400,
            EventKind::Fsm {
                from: FsmState::Idle,
                to: FsmState::Slow,
                depth: 0,
            },
        );
        c.emit_at(
            0,
            900,
            EventKind::Fsm {
                from: FsmState::Slow,
                to: FsmState::Idle,
                depth: 0,
            },
        );
        c.emit_at(0, 1000, EventKind::Push);
        let d = dwell_times(&c.finish());
        assert_eq!(d[0].span_ns, 1000);
        assert_eq!(d[0].special_ns, 200);
        assert_eq!(d[0].slow_ns, 500);
        assert_eq!(d[0].sync_wait_ns, 0);
        assert_eq!(d[0].work_ns, 300);
    }

    #[test]
    fn steal_latency_pairs_attempt_with_outcome() {
        let c = TraceCollector::new(2, 64);
        c.emit_at(1, 100, EventKind::StealAttempt { victim: 0 });
        c.emit_at(1, 140, EventKind::StealEmpty { victim: 0 });
        c.emit_at(1, 200, EventKind::StealAttempt { victim: 0 });
        c.emit_at(1, 210, EventKind::StealOk { victim: 0 });
        let h = steal_latency(&c.finish());
        assert_eq!(h.count, 2);
        assert_eq!(h.sum, 50);
        assert_eq!(h.max, 40);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn occupancy_replay_counts_all_deque_traffic() {
        let c = TraceCollector::new(2, 64);
        c.emit_at(0, 10, EventKind::Push);
        c.emit_at(0, 20, EventKind::Push);
        c.emit_at(1, 30, EventKind::StealOk { victim: 0 });
        c.emit_at(0, 40, EventKind::Pop);
        let h = deque_occupancy(&c.finish());
        // Occupancies after each change: 1, 2, 1, 0.
        assert_eq!(h.count, 4);
        assert_eq!(h.max, 2);
        assert_eq!(h.sum, 4);
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn counts_tally_every_kind() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 2, EventKind::Push);
        c.emit_at(0, 3, EventKind::SpecialPush);
        c.emit_at(0, 4, EventKind::SpecialConsume { reclaimed: true });
        c.emit_at(0, 5, EventKind::SpecialConsume { reclaimed: false });
        c.emit_at(0, 6, EventKind::CopySaved);
        let counts = TraceCounts::from_trace(&c.finish());
        assert_eq!(counts.spawns, 1);
        assert_eq!(counts.pushes, 1);
        assert_eq!(counts.special_pushes, 1);
        assert_eq!(counts.special_reclaimed, 1);
        assert_eq!(counts.special_lost, 1);
        assert_eq!(counts.copies_saved, 1);
    }

    #[test]
    fn cdf_quantiles_use_nearest_rank() {
        let cdf = Cdf::from_samples((1..=100).collect());
        assert_eq!(cdf.count(), 100);
        assert_eq!(cdf.p50(), 50);
        assert_eq!(cdf.p90(), 90);
        assert_eq!(cdf.p99(), 99);
        assert_eq!(cdf.quantile(1.0), 100);
        assert_eq!(cdf.max(), 100);
        assert_eq!(cdf.mean(), 50.5);
        let empty = Cdf::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p99(), 0);
    }

    #[test]
    fn steal_latency_cdf_matches_the_histogram_pairing() {
        let c = TraceCollector::new(2, 64);
        c.emit_at(1, 100, EventKind::StealAttempt { victim: 0 });
        c.emit_at(1, 140, EventKind::StealEmpty { victim: 0 });
        c.emit_at(1, 200, EventKind::StealAttempt { victim: 0 });
        c.emit_at(1, 210, EventKind::StealOk { victim: 0 });
        let cdf = steal_latency_cdf(&c.finish());
        assert_eq!(cdf.count(), 2);
        assert_eq!(cdf.p50(), 10);
        assert_eq!(cdf.max(), 40);
    }

    #[test]
    fn response_time_runs_from_first_signal_to_next_steal_ok() {
        let c = TraceCollector::new(2, 64);
        // Thief 1 signals twice (second victim) before the delivery; the
        // wait spans from the first signal.
        c.emit_at(1, 100, EventKind::NeedTaskSignal { victim: 0 });
        c.emit_at(1, 150, EventKind::NeedTaskSignal { victim: 0 });
        c.emit_at(1, 180, EventKind::StealEmpty { victim: 0 });
        c.emit_at(1, 400, EventKind::StealOk { victim: 0 });
        // A second wait with no delivery contributes nothing.
        c.emit_at(1, 500, EventKind::NeedTaskSignal { victim: 0 });
        let cdf = response_time_cdf(&c.finish());
        assert_eq!(cdf.count(), 1);
        assert_eq!(cdf.p50(), 300);
    }
}
