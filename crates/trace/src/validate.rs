//! Differential validation: trace-derived counts must equal the engine's
//! `RunStats` counters exactly — per worker and in aggregate.
//!
//! This is the acceptance oracle for the instrumentation itself: every
//! counter the engine bumps has a twin event, so any missed or spurious
//! emission shows up as a mismatch here.
//!
//! The oracle is **filter- and sampling-aware**. Each checked counter
//! derives from events of exactly one [`Category`] (the partition in
//! [`crate::filter`] is designed around this), so:
//!
//! * a counter whose category the trace's filter masked is skipped — the
//!   trace legitimately contains no evidence either way;
//! * a counter whose category was 1-in-N *sampled* is checked as a bound
//!   (`traced ≤ stats`): sampling drops events but never invents them,
//!   and `RunStats` keeps the exact count regardless;
//! * every other counter — all categories recorded unsampled — is
//!   checked exactly, as before.

use crate::analysis::TraceCounts;
use crate::collector::Trace;
use crate::filter::Category;
use adaptivetc_core::stats::{RunReport, RunStats};

/// One discrepancy between the trace and the stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// `None` for the aggregate check, `Some(w)` for worker `w`.
    pub worker: Option<usize>,
    /// Which counter disagreed.
    pub counter: &'static str,
    /// Count derived from the trace.
    pub traced: u64,
    /// Counter reported by `RunStats`.
    pub stats: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.worker {
            Some(w) => write!(
                f,
                "worker {w}: {} traced={} stats={}",
                self.counter, self.traced, self.stats
            ),
            None => write!(
                f,
                "aggregate: {} traced={} stats={}",
                self.counter, self.traced, self.stats
            ),
        }
    }
}

struct Checker<'a> {
    trace: &'a Trace,
    out: Vec<Mismatch>,
}

impl Checker<'_> {
    /// Check one counter against its single source category: exact when
    /// the category was recorded unsampled, `traced ≤ stats` when
    /// sampled, skipped when masked.
    fn check(
        &mut self,
        worker: Option<usize>,
        counter: &'static str,
        cat: Category,
        traced: u64,
        stats: u64,
    ) {
        if !self.trace.records(cat) {
            return;
        }
        let mismatch = if self.trace.sampled(cat) {
            traced > stats
        } else {
            traced != stats
        };
        if mismatch {
            self.out.push(Mismatch {
                worker,
                counter,
                traced,
                stats,
            });
        }
    }

    fn compare(&mut self, worker: Option<usize>, c: &TraceCounts, s: &RunStats) {
        use Category as Cat;
        self.check(
            worker,
            "tasks_created",
            Cat::Spawn,
            c.spawns,
            s.tasks_created,
        );
        self.check(
            worker,
            "deque_pushes",
            Cat::Deque,
            c.pushes + c.special_pushes,
            s.deque_pushes,
        );
        self.check(
            worker,
            "deque_pops",
            Cat::Deque,
            c.pops + c.special_reclaimed,
            s.deque_pops,
        );
        self.check(
            worker,
            "pop_conflicts",
            Cat::Deque,
            c.pop_conflicts + c.special_lost,
            s.pop_conflicts,
        );
        self.check(worker, "steals_ok", Cat::Steal, c.steals_ok, s.steals_ok);
        self.check(
            worker,
            "steals_failed",
            Cat::Steal,
            c.steals_empty,
            s.steals_failed,
        );
        self.check(worker, "fake_tasks", Cat::Fake, c.fake_tasks, s.fake_tasks);
        self.check(
            worker,
            "special_tasks",
            Cat::Special,
            c.special_begins,
            s.special_tasks,
        );
        self.check(
            worker,
            "workspace_copies_saved",
            Cat::Workspace,
            c.copies_saved,
            s.workspace_copies_saved,
        );
        self.check(worker, "suspensions", Cat::Sync, c.suspends, s.suspensions);
        self.check(
            worker,
            "cutoff_adjustments",
            Cat::Strategy,
            c.cutoff_tunes,
            s.cutoff_adjustments,
        );
        self.check(
            worker,
            "threshold_adjustments",
            Cat::Strategy,
            c.threshold_tunes,
            s.threshold_adjustments,
        );
    }
}

/// Validate `trace` against `report`. Returns every mismatch found (empty
/// means the trace and the stats agree exactly). A non-zero dropped-event
/// count invalidates the comparison and is reported as a mismatch on the
/// pseudo-counter `dropped_events`.
pub fn validate(trace: &Trace, report: &RunReport) -> Vec<Mismatch> {
    let mut ck = Checker {
        trace,
        out: Vec::new(),
    };
    for w in &trace.workers {
        if w.dropped > 0 {
            ck.out.push(Mismatch {
                worker: Some(w.worker),
                counter: "dropped_events",
                traced: w.dropped,
                stats: 0,
            });
        }
    }
    // Per-worker comparison when the report carries per-worker stats.
    if report.per_worker.len() == trace.workers.len() {
        for (w, stats) in trace.workers.iter().zip(report.per_worker.iter()) {
            let counts = TraceCounts::from_events(w.events.iter());
            ck.compare(Some(w.worker), &counts, stats);
        }
    }
    let total = TraceCounts::from_trace(trace);
    ck.compare(None, &total, &report.stats);
    ck.out
}

/// Panic with a readable report if `validate` finds any mismatch.
pub fn assert_valid(trace: &Trace, report: &RunReport) {
    let mismatches = validate(trace, report);
    if !mismatches.is_empty() {
        let lines: Vec<String> = mismatches.iter().map(|m| format!("  {m}")).collect();
        panic!(
            "trace/stats differential failed ({} mismatches):\n{}",
            mismatches.len(),
            lines.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::event::EventKind;

    fn report_for(stats: Vec<RunStats>) -> RunReport {
        RunReport::from_workers(stats, 0)
    }

    #[test]
    fn matching_trace_validates_clean() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 2, EventKind::Push);
        c.emit_at(0, 3, EventKind::Pop);
        c.emit_at(0, 4, EventKind::FakeTask { depth: 3 });
        let s = RunStats {
            tasks_created: 1,
            deque_pushes: 1,
            deque_pops: 1,
            fake_tasks: 1,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn special_events_fold_into_deque_counters() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Push);
        c.emit_at(0, 2, EventKind::SpecialPush);
        c.emit_at(0, 3, EventKind::Pop);
        c.emit_at(0, 4, EventKind::SpecialConsume { reclaimed: true });
        c.emit_at(0, 5, EventKind::SpecialConsume { reclaimed: false });
        let s = RunStats {
            deque_pushes: 2,
            deque_pops: 2,
            pop_conflicts: 1,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn mismatch_is_reported_per_worker_and_aggregate() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        let s = RunStats::default(); // claims zero tasks
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert_eq!(mismatches.len(), 2); // worker 0 + aggregate
        assert_eq!(mismatches[0].counter, "tasks_created");
        assert_eq!(mismatches[0].worker, Some(0));
        assert_eq!(mismatches[1].worker, None);
        assert_eq!(
            format!("{}", mismatches[0]),
            "worker 0: tasks_created traced=1 stats=0"
        );
    }

    #[test]
    #[should_panic(expected = "trace/stats differential failed")]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn assert_valid_panics_on_mismatch() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        assert_valid(&c.finish(), &report_for(vec![RunStats::default()]));
    }

    #[test]
    fn masked_categories_are_skipped_not_mismatched() {
        // Deque masked: the stats can claim any push/pop counts without
        // the (empty) trace contradicting them — but spawns stay exact.
        let c = TraceCollector::with_options(1, 256, !Category::Deque.bit(), 1);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 2, EventKind::Push); // filtered out
        let s = RunStats {
            tasks_created: 1,
            deque_pushes: 7,
            deque_pops: 7,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn sampled_categories_are_bounded_not_exact() {
        let c = TraceCollector::with_options(1, 256, u64::MAX, 4);
        let h = c.handle(0);
        for _ in 0..16 {
            h.emit(EventKind::Push); // 4 survive the 1-in-4 sampling
        }
        h.emit(EventKind::SyncSuspend); // Sync is never sampled
        let s = RunStats {
            deque_pushes: 16,
            suspensions: 1,
            ..Default::default()
        };
        let trace = c.finish();
        assert!(validate(&trace, &report_for(vec![s])).is_empty());
        // But a traced count *exceeding* the stats is still a mismatch.
        let lying = RunStats {
            deque_pushes: 2,
            suspensions: 1,
            ..Default::default()
        };
        let mismatches = validate(&trace, &report_for(vec![lying]));
        assert!(
            mismatches.iter().any(|m| m.counter == "deque_pushes"),
            "{mismatches:?}"
        );
    }

    #[test]
    fn unsampled_categories_stay_exact_under_sampling() {
        // With sampling on, a missed suspension event must still fail.
        let c = TraceCollector::with_options(1, 256, u64::MAX, 8);
        let s = RunStats {
            suspensions: 1,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(
            mismatches.iter().any(|m| m.counter == "suspensions"),
            "{mismatches:?}"
        );
    }
}
