//! Differential validation: trace-derived counts must equal the engine's
//! `RunStats` counters exactly — per worker and in aggregate.
//!
//! This is the acceptance oracle for the instrumentation itself: every
//! counter the engine bumps has a twin event, so any missed or spurious
//! emission shows up as a mismatch here.

use crate::analysis::TraceCounts;
use crate::collector::Trace;
use adaptivetc_core::stats::{RunReport, RunStats};

/// One discrepancy between the trace and the stats.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Mismatch {
    /// `None` for the aggregate check, `Some(w)` for worker `w`.
    pub worker: Option<usize>,
    /// Which counter disagreed.
    pub counter: &'static str,
    /// Count derived from the trace.
    pub traced: u64,
    /// Counter reported by `RunStats`.
    pub stats: u64,
}

impl std::fmt::Display for Mismatch {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self.worker {
            Some(w) => write!(
                f,
                "worker {w}: {} traced={} stats={}",
                self.counter, self.traced, self.stats
            ),
            None => write!(
                f,
                "aggregate: {} traced={} stats={}",
                self.counter, self.traced, self.stats
            ),
        }
    }
}

fn check(
    out: &mut Vec<Mismatch>,
    worker: Option<usize>,
    counter: &'static str,
    traced: u64,
    stats: u64,
) {
    if traced != stats {
        out.push(Mismatch {
            worker,
            counter,
            traced,
            stats,
        });
    }
}

fn compare(out: &mut Vec<Mismatch>, worker: Option<usize>, c: &TraceCounts, s: &RunStats) {
    check(out, worker, "tasks_created", c.spawns, s.tasks_created);
    check(
        out,
        worker,
        "deque_pushes",
        c.pushes + c.special_pushes,
        s.deque_pushes,
    );
    check(
        out,
        worker,
        "deque_pops",
        c.pops + c.special_reclaimed,
        s.deque_pops,
    );
    check(
        out,
        worker,
        "pop_conflicts",
        c.pop_conflicts + c.special_lost,
        s.pop_conflicts,
    );
    check(out, worker, "steals_ok", c.steals_ok, s.steals_ok);
    check(
        out,
        worker,
        "steals_failed",
        c.steals_empty,
        s.steals_failed,
    );
    check(out, worker, "fake_tasks", c.fake_tasks, s.fake_tasks);
    check(
        out,
        worker,
        "special_tasks",
        c.special_begins,
        s.special_tasks,
    );
    check(
        out,
        worker,
        "workspace_copies_saved",
        c.copies_saved,
        s.workspace_copies_saved,
    );
    check(out, worker, "suspensions", c.suspends, s.suspensions);
}

/// Validate `trace` against `report`. Returns every mismatch found (empty
/// means the trace and the stats agree exactly). A non-zero dropped-event
/// count invalidates the comparison and is reported as a mismatch on the
/// pseudo-counter `dropped_events`.
pub fn validate(trace: &Trace, report: &RunReport) -> Vec<Mismatch> {
    let mut out = Vec::new();
    for w in &trace.workers {
        if w.dropped > 0 {
            out.push(Mismatch {
                worker: Some(w.worker),
                counter: "dropped_events",
                traced: w.dropped,
                stats: 0,
            });
        }
    }
    // Per-worker comparison when the report carries per-worker stats.
    if report.per_worker.len() == trace.workers.len() {
        for (w, stats) in trace.workers.iter().zip(report.per_worker.iter()) {
            let counts = TraceCounts::from_events(w.events.iter());
            compare(&mut out, Some(w.worker), &counts, stats);
        }
    }
    let total = TraceCounts::from_trace(trace);
    compare(&mut out, None, &total, &report.stats);
    out
}

/// Panic with a readable report if `validate` finds any mismatch.
pub fn assert_valid(trace: &Trace, report: &RunReport) {
    let mismatches = validate(trace, report);
    if !mismatches.is_empty() {
        let lines: Vec<String> = mismatches.iter().map(|m| format!("  {m}")).collect();
        panic!(
            "trace/stats differential failed ({} mismatches):\n{}",
            mismatches.len(),
            lines.join("\n")
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::event::EventKind;

    fn report_for(stats: Vec<RunStats>) -> RunReport {
        RunReport::from_workers(stats, 0)
    }

    #[test]
    fn matching_trace_validates_clean() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        c.emit_at(0, 2, EventKind::Push);
        c.emit_at(0, 3, EventKind::Pop);
        c.emit_at(0, 4, EventKind::FakeTask { depth: 3 });
        let s = RunStats {
            tasks_created: 1,
            deque_pushes: 1,
            deque_pops: 1,
            fake_tasks: 1,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn special_events_fold_into_deque_counters() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Push);
        c.emit_at(0, 2, EventKind::SpecialPush);
        c.emit_at(0, 3, EventKind::Pop);
        c.emit_at(0, 4, EventKind::SpecialConsume { reclaimed: true });
        c.emit_at(0, 5, EventKind::SpecialConsume { reclaimed: false });
        let s = RunStats {
            deque_pushes: 2,
            deque_pops: 2,
            pop_conflicts: 1,
            ..Default::default()
        };
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert!(mismatches.is_empty(), "{mismatches:?}");
    }

    #[test]
    fn mismatch_is_reported_per_worker_and_aggregate() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        let s = RunStats::default(); // claims zero tasks
        let mismatches = validate(&c.finish(), &report_for(vec![s]));
        assert_eq!(mismatches.len(), 2); // worker 0 + aggregate
        assert_eq!(mismatches[0].counter, "tasks_created");
        assert_eq!(mismatches[0].worker, Some(0));
        assert_eq!(mismatches[1].worker, None);
        assert_eq!(
            format!("{}", mismatches[0]),
            "worker 0: tasks_created traced=1 stats=0"
        );
    }

    #[test]
    #[should_panic(expected = "trace/stats differential failed")]
    fn assert_valid_panics_on_mismatch() {
        let c = TraceCollector::new(1, 256);
        c.emit_at(0, 1, EventKind::Spawn { depth: 0 });
        assert_valid(&c.finish(), &report_for(vec![RunStats::default()]));
    }
}
