//! Trace-vs-sim alignment: compare a real (threaded) trace with a
//! simulator trace of the same workload over the *shared schema subset* —
//! the event kinds both producers emit with identical meaning.
//!
//! Timestamps are incomparable between the two (wall ns vs virtual ns),
//! and thread interleaving makes per-event alignment meaningless beyond
//! one thread, so the diff compares per-kind occurrence counts. At one
//! thread the scheduling is deterministic on both sides and every shared
//! count must match exactly (this is the same identity the suite's
//! engine-vs-sim differential test asserts via `RunStats`); at higher
//! thread counts the diff is a report, not an oracle.

use crate::analysis::TraceCounts;
use crate::collector::Trace;

/// Per-kind counts restricted to the shared real/sim schema subset.
///
/// Excluded kinds and why:
/// * `StealAttempt` — the real steal loop probes empty deques at a rate
///   driven by wall time and back-off; the sim models steal *outcomes*.
/// * `Fsm`, `SpecialEnd`, `SyncResume` — worker-phase bracketing the sim
///   does not model as events.
/// * `NeedTask*`, `Ws*` — signalling details whose cadence is
///   timing-dependent even at matching outcomes.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SharedCounts {
    /// Real tasks created.
    pub spawns: u64,
    /// Regular deque pushes.
    pub pushes: u64,
    /// Regular owner pops.
    pub pops: u64,
    /// Owner pops that lost to a thief.
    pub pop_conflicts: u64,
    /// Fake tasks executed.
    pub fake_tasks: u64,
    /// Special tasks created.
    pub special_begins: u64,
    /// Special deque pushes.
    pub special_pushes: u64,
    /// Special entries consumed (reclaimed + lost).
    pub special_consumes: u64,
    /// Successful steals.
    pub steals_ok: u64,
    /// Failed steals.
    pub steals_empty: u64,
    /// Elided workspace clones.
    pub copies_saved: u64,
    /// Sync suspensions.
    pub suspends: u64,
}

impl SharedCounts {
    /// Project the full counts onto the shared subset.
    pub fn from_trace(trace: &Trace) -> SharedCounts {
        let c = TraceCounts::from_trace(trace);
        SharedCounts {
            spawns: c.spawns,
            pushes: c.pushes,
            pops: c.pops,
            pop_conflicts: c.pop_conflicts,
            fake_tasks: c.fake_tasks,
            special_begins: c.special_begins,
            special_pushes: c.special_pushes,
            special_consumes: c.special_reclaimed + c.special_lost,
            steals_ok: c.steals_ok,
            steals_empty: c.steals_empty,
            copies_saved: c.copies_saved,
            suspends: c.suspends,
        }
    }

    fn rows(&self) -> [(&'static str, u64); 12] {
        [
            ("spawn", self.spawns),
            ("push", self.pushes),
            ("pop", self.pops),
            ("pop_conflict", self.pop_conflicts),
            ("fake_task", self.fake_tasks),
            ("special_begin", self.special_begins),
            ("special_push", self.special_pushes),
            ("special_consume", self.special_consumes),
            ("steal_ok", self.steals_ok),
            ("steal_empty", self.steals_empty),
            ("copy_saved", self.copies_saved),
            ("sync_suspend", self.suspends),
        ]
    }
}

/// One row of the diff report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DiffRow {
    /// Event kind name.
    pub kind: &'static str,
    /// Count in the real trace.
    pub real: u64,
    /// Count in the simulator trace.
    pub sim: u64,
}

impl DiffRow {
    /// True when real and sim agree on this kind.
    pub fn matches(&self) -> bool {
        self.real == self.sim
    }
}

/// The full trace-vs-sim comparison.
#[derive(Debug, Clone)]
pub struct TraceDiff {
    /// One row per shared event kind.
    pub rows: Vec<DiffRow>,
}

impl TraceDiff {
    /// Compare a real trace against a simulator trace.
    pub fn compare(real: &Trace, sim: &Trace) -> TraceDiff {
        let r = SharedCounts::from_trace(real);
        let s = SharedCounts::from_trace(sim);
        let rows = r
            .rows()
            .iter()
            .zip(s.rows().iter())
            .map(|(&(kind, real), &(_, sim))| DiffRow { kind, real, sim })
            .collect();
        TraceDiff { rows }
    }

    /// True when every shared kind matches.
    pub fn is_exact(&self) -> bool {
        self.rows.iter().all(DiffRow::matches)
    }

    /// Rows where real and sim disagree.
    pub fn mismatches(&self) -> Vec<DiffRow> {
        self.rows.iter().copied().filter(|r| !r.matches()).collect()
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut out = String::from("kind              real        sim   match\n");
        for r in &self.rows {
            out.push_str(&format!(
                "{:<16}{:>7}{:>11}   {}\n",
                r.kind,
                r.real,
                r.sim,
                if r.matches() { "yes" } else { "NO" }
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::collector::TraceCollector;
    use crate::event::{EventKind, FsmState};

    fn trace_with(kinds: &[EventKind]) -> Trace {
        let c = TraceCollector::new(1, 1024);
        for (i, k) in kinds.iter().enumerate() {
            c.emit_at(0, i as u64, *k);
        }
        c.finish()
    }

    #[test]
    fn identical_streams_diff_exact() {
        let kinds = [
            EventKind::Spawn { depth: 0 },
            EventKind::Push,
            EventKind::Pop,
            EventKind::FakeTask { depth: 2 },
            EventKind::CopySaved,
        ];
        let diff = TraceDiff::compare(&trace_with(&kinds), &trace_with(&kinds));
        assert!(diff.is_exact(), "{}", diff.render());
    }

    #[test]
    fn non_shared_kinds_are_ignored() {
        let real = trace_with(&[
            EventKind::Push,
            EventKind::StealAttempt { victim: 0 },
            EventKind::Fsm {
                from: FsmState::Fast,
                to: FsmState::Check,
                depth: 1,
            },
            EventKind::NeedTaskAck,
        ]);
        let sim = trace_with(&[EventKind::Push]);
        let diff = TraceDiff::compare(&real, &sim);
        assert!(diff.is_exact(), "{}", diff.render());
    }

    #[test]
    #[cfg_attr(
        feature = "no-hot-events",
        ignore = "exercises hot categories that this feature compiles out"
    )]
    fn mismatch_is_reported() {
        let real = trace_with(&[EventKind::Push, EventKind::Push]);
        let sim = trace_with(&[EventKind::Push]);
        let diff = TraceDiff::compare(&real, &sim);
        assert!(!diff.is_exact());
        let bad = diff.mismatches();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].kind, "push");
        assert_eq!((bad[0].real, bad[0].sim), (2, 1));
        assert!(diff.render().contains("NO"));
    }

    #[test]
    fn consumes_merge_reclaimed_and_lost() {
        let real = trace_with(&[
            EventKind::SpecialConsume { reclaimed: true },
            EventKind::SpecialConsume { reclaimed: false },
        ]);
        let sim = trace_with(&[
            EventKind::SpecialConsume { reclaimed: false },
            EventKind::SpecialConsume { reclaimed: true },
        ]);
        assert!(TraceDiff::compare(&real, &sim).is_exact());
    }
}
