//! Synchronization facade for the trace crate.
//!
//! The lock-free ring buffer is the only concurrent structure in this
//! crate; it pulls its atomics from here (mirroring the facades in
//! `adaptivetc-deque` and `adaptivetc-runtime`) so the lint's
//! facade-integrity rule covers trace code too, and so the ring could be
//! compiled against a model-checking shim by editing this one module.

pub use std::sync::atomic::{AtomicU64, Ordering};
