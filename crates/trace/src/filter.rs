//! Event categories and the two-level category filter.
//!
//! Every [`EventKind`] belongs to exactly one [`Category`]; a trace
//! filter is a bitmask of category bits. Filtering happens at **two**
//! levels, both resolved before an event is constructed:
//!
//! * **Compile time** — [`compiled_mask`] removes whole categories from
//!   the build when the `no-hot-events` cargo feature is enabled (the
//!   hot trio: deque traffic, fake tasks, spawns). The emit macros still
//!   type-check; the mask test constant-folds to `false` and the whole
//!   site is dead-code-eliminated.
//! * **Run time** — `Config::trace_filter` (a raw `u64` so the core
//!   crate needs no dependency on this one) is ANDed with the compiled
//!   mask in the collector and checked with a single `Relaxed` load per
//!   emission.
//!
//! The category partition deliberately follows the `RunStats` counters:
//! each counter that [`validate`](crate::validate) checks derives from
//! events of exactly one category, so masking a category cleanly skips
//! its counters instead of corrupting the differential.
//!
//! Categories in [`Category::SAMPLED_MASK`] (the same hot trio) are
//! additionally subject to 1-in-N sampling when `Config::trace_sample`
//! is above 1; see [`crate::collector`].

use crate::event::EventKind;

/// An event category — one bit of a trace filter mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(u8)]
pub enum Category {
    /// Real-task creation ([`EventKind::Spawn`]).
    Spawn = 0,
    /// Owner-side deque traffic: pushes, pops, pop conflicts, special
    /// pushes and special consumes. The hottest category by far.
    Deque = 1,
    /// Thief-side steal probes and their outcomes.
    Steal = 2,
    /// Fake-task execution ([`EventKind::FakeTask`]) — one event per
    /// demoted node, second-hottest category.
    Fake = 3,
    /// FSM version transitions.
    Fsm = 4,
    /// Special-task sections (begin/end).
    Special = 5,
    /// `need_task` signalling (signal + acknowledge).
    Signal = 6,
    /// Copy-on-steal workspace traffic (request/deposit/take/elision).
    Workspace = 7,
    /// Suspension brackets of special syncs.
    Sync = 8,
    /// Job-server participation brackets. Never maskable: the collector
    /// forces this bit on because [`crate::Trace::split_jobs`] needs the
    /// brackets to attribute every other event.
    Job = 9,
    /// Strategy-engine adjustments: cutoff tunes and threshold tunes
    /// from the online controllers. Sampled like the hot trio so a
    /// pathological oscillation cannot flood the rings.
    Strategy = 10,
}

impl Category {
    /// All categories, indexable by discriminant.
    pub const ALL: [Category; 11] = [
        Category::Spawn,
        Category::Deque,
        Category::Steal,
        Category::Fake,
        Category::Fsm,
        Category::Special,
        Category::Signal,
        Category::Workspace,
        Category::Sync,
        Category::Job,
        Category::Strategy,
    ];

    /// Mask with every category enabled.
    pub const ALL_MASK: u64 = (1 << Category::ALL.len()) - 1;

    /// The categories subject to 1-in-N sampling when
    /// `Config::trace_sample > 1`: the high-frequency trio whose events
    /// scale with the task tree rather than with scheduling decisions,
    /// plus strategy tunes (which an oscillating controller could emit
    /// at poll frequency).
    pub const SAMPLED_MASK: u64 = Category::Deque.bit()
        | Category::Fake.bit()
        | Category::Spawn.bit()
        | Category::Strategy.bit();

    /// This category's filter bit.
    #[inline]
    pub const fn bit(self) -> u64 {
        1 << (self as u8)
    }

    /// Short stable name for reports and bench output.
    pub fn name(self) -> &'static str {
        match self {
            Category::Spawn => "spawn",
            Category::Deque => "deque",
            Category::Steal => "steal",
            Category::Fake => "fake",
            Category::Fsm => "fsm",
            Category::Special => "special",
            Category::Signal => "signal",
            Category::Workspace => "workspace",
            Category::Sync => "sync",
            Category::Job => "job",
            Category::Strategy => "strategy",
        }
    }
}

/// The categories compiled into this build. All of them normally; the
/// `no-hot-events` cargo feature statically removes the hot trio so
/// their emit sites vanish entirely (the strongest form of "disabled").
pub const fn compiled_mask() -> u64 {
    #[cfg(feature = "no-hot-events")]
    {
        Category::ALL_MASK & !Category::SAMPLED_MASK
    }
    #[cfg(not(feature = "no-hot-events"))]
    {
        Category::ALL_MASK
    }
}

impl EventKind {
    /// The category this event belongs to.
    pub fn category(&self) -> Category {
        match self {
            EventKind::Spawn { .. } => Category::Spawn,
            EventKind::Push
            | EventKind::Pop
            | EventKind::PopConflict
            | EventKind::SpecialPush
            | EventKind::SpecialConsume { .. } => Category::Deque,
            EventKind::StealAttempt { .. }
            | EventKind::StealOk { .. }
            | EventKind::StealEmpty { .. }
            | EventKind::StealDup { .. } => Category::Steal,
            EventKind::FakeTask { .. } => Category::Fake,
            EventKind::Fsm { .. } => Category::Fsm,
            EventKind::SpecialBegin { .. } | EventKind::SpecialEnd => Category::Special,
            EventKind::NeedTaskSignal { .. } | EventKind::NeedTaskAck => Category::Signal,
            EventKind::WsRequest { .. }
            | EventKind::WsDeposit
            | EventKind::WsTake
            | EventKind::CopySaved => Category::Workspace,
            EventKind::SyncSuspend | EventKind::SyncResume => Category::Sync,
            EventKind::JobBegin { .. } | EventKind::JobEnd { .. } => Category::Job,
            EventKind::CutoffTune { .. } | EventKind::ThresholdTune { .. } => Category::Strategy,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bits_are_distinct_and_cover_all_mask() {
        let mut acc = 0u64;
        for c in Category::ALL {
            assert_eq!(acc & c.bit(), 0, "{} reuses a bit", c.name());
            acc |= c.bit();
        }
        assert_eq!(acc, Category::ALL_MASK);
    }

    #[test]
    fn sampled_mask_is_the_hot_trio_plus_strategy() {
        assert_eq!(
            Category::SAMPLED_MASK,
            Category::Deque.bit()
                | Category::Fake.bit()
                | Category::Spawn.bit()
                | Category::Strategy.bit()
        );
    }

    #[test]
    fn names_are_distinct() {
        let mut names: Vec<_> = Category::ALL.iter().map(|c| c.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), Category::ALL.len());
    }

    #[test]
    fn compiled_mask_defaults_to_everything() {
        #[cfg(not(feature = "no-hot-events"))]
        assert_eq!(compiled_mask(), Category::ALL_MASK);
        #[cfg(feature = "no-hot-events")]
        assert_eq!(
            compiled_mask(),
            Category::ALL_MASK & !Category::SAMPLED_MASK
        );
    }

    #[test]
    fn every_kind_has_a_category() {
        // Spot-check the partition boundaries that validate() relies on.
        assert_eq!(EventKind::SpecialPush.category(), Category::Deque);
        assert_eq!(
            EventKind::SpecialConsume { reclaimed: false }.category(),
            Category::Deque
        );
        assert_eq!(
            EventKind::SpecialBegin { depth: 0 }.category(),
            Category::Special
        );
        assert_eq!(EventKind::CopySaved.category(), Category::Workspace);
        assert_eq!(
            EventKind::JobBegin { job: 1, slot: 0 }.category(),
            Category::Job
        );
    }
}
