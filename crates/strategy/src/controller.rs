//! The online controllers: pure, single-owner feedback state.
//!
//! Both controllers are plain structs a worker owns privately — no
//! atomics, no shared state. Every input they consume is a value the
//! worker already read on its existing hot path (the relaxed
//! `need_task` poll, its own deque occupancy, its own failed-steal
//! streak), so closing the feedback loop adds **zero** new fences or
//! shared-memory traffic; the only cross-thread write an adjustment can
//! cause is the owner's relaxed threshold store, which the
//! model-checking harness in `crates/check` explores exhaustively
//! (`#[path]`-including this file, so the model and the product run the
//! same transition code).
//!
//! # The cutoff rule and why it is stable
//!
//! The effective cutoff is `base + boost` with
//! `boost ∈ [0, MAX_BOOST]` (additive-increase/additive-decrease):
//!
//! * **Increase** (+1) on each observed pressure edge — a raised
//!   `need_task` at a poll, or a steal this worker completed only after
//!   a long failed streak. Both mean thieves are starving: a deeper
//!   cutoff makes the next subtree publish more stealable tasks.
//! * **Decrease** (−1, toward `base`) after [`DECAY_PERIOD`]
//!   consecutive calm polls with own-deque occupancy at or above
//!   [`COMFORT_OCCUPANCY`]. Calm + a stocked deque means the extra
//!   tasks are no longer needed and their copy overhead can be shed.
//!
//! Bounded state, one-step moves, and opposing signals that cannot fire
//! on the same poll (a poll is either pressured or calm) give the loop
//! a standard AIAD stability argument: under sustained pressure it
//! converges to `base + MAX_BOOST` without overshoot, under sustained
//! calm it returns to `base` at 1/[`DECAY_PERIOD`] the rise rate, and
//! with no thieves at all (a 1-thread run) no pressure edge ever fires,
//! so the effective cutoff is the static `base` bit-for-bit.

/// Most the adaptive cutoff may exceed its static base: deep enough to
/// multiply the stealable frontier by up to 2^8 on binary trees, small
/// enough that the copy overhead of a mistuned peak stays bounded.
pub const MAX_BOOST: u32 = 8;

/// Consecutive comfortable polls before one step of cutoff decay. Polls
/// happen once per fake task, so this is ~64 sequential nodes of calm.
pub const DECAY_PERIOD: u32 = 64;

/// Own-deque occupancy at or above which a calm poll counts toward
/// decay: with at least this many stealable entries parked, extra task
/// creation is pure overhead.
pub const COMFORT_OCCUPANCY: usize = 2;

/// Failed-steal streak beyond which a finally-successful steal counts as
/// a pressure edge ([`CutoffController::on_hard_steal`]): work exists
/// but took this many probes to find, i.e. tasks are too scarce.
pub const HARD_STEAL_STREAK: u32 = 16;

/// Per-worker adaptive cutoff state. See the module docs for the rule.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CutoffController {
    base: u32,
    boost: u32,
    calm: u32,
}

impl CutoffController {
    /// A controller resting at the static cutoff `base`.
    pub fn new(base: u32) -> CutoffController {
        CutoffController {
            base,
            boost: 0,
            calm: 0,
        }
    }

    /// The static cutoff this controller rests at.
    pub fn base(&self) -> u32 {
        self.base
    }

    /// The current effective cutoff, `base + boost`.
    pub fn effective(&self) -> u32 {
        self.base + self.boost
    }

    /// Is the cutoff currently above its base (i.e. could a calm poll
    /// decay it)? Lets the caller skip gathering the occupancy signal
    /// entirely while the controller rests at base.
    pub fn boosted(&self) -> bool {
        self.boost > 0
    }

    /// A poll observed a raised `need_task`: thieves are starving.
    /// Returns the new effective cutoff if the adjustment moved it.
    pub fn on_pressure(&mut self) -> Option<u32> {
        self.calm = 0;
        if self.boost < MAX_BOOST {
            self.boost += 1;
            Some(self.effective())
        } else {
            None
        }
    }

    /// This worker's own steal succeeded only after at least
    /// [`HARD_STEAL_STREAK`] failed probes — tasks exist but are scarce.
    /// Same raise as [`CutoffController::on_pressure`].
    pub fn on_hard_steal(&mut self) -> Option<u32> {
        self.on_pressure()
    }

    /// A poll observed no pressure; `occupancy` is the worker's own
    /// deque length at the poll. Returns the new effective cutoff if a
    /// decay step fired.
    pub fn on_calm_poll(&mut self, occupancy: usize) -> Option<u32> {
        if occupancy < COMFORT_OCCUPANCY {
            self.calm = 0;
            return None;
        }
        if self.boost == 0 {
            return None;
        }
        self.calm += 1;
        if self.calm >= DECAY_PERIOD {
            self.calm = 0;
            self.boost -= 1;
            Some(self.effective())
        } else {
            None
        }
    }
}

/// Consecutive quiet polls before one step of threshold decay.
pub const THRESHOLD_QUIET_PERIOD: u32 = 64;

/// Growth factor bound of the adaptive threshold: `cur ≤ base × 8`.
pub const THRESHOLD_MAX_FACTOR: u32 = 8;

/// Per-worker adaptive `need_task` threshold state.
///
/// The threshold (`max_stolen_num`) trades responsiveness against
/// special-transition churn: each acknowledged `need_task` raises it by
/// `base` (the burst that just fired should not immediately re-fire a
/// special while the freshly spawned tasks propagate), and
/// [`THRESHOLD_QUIET_PERIOD`] consecutive quiet polls decay it one step
/// — past `base` down to `max(1, base/2)`, where a long-calm worker is
/// *more* responsive than the static default to the next starvation
/// onset. Bounds: `[max(1, base/2), base × 8]`.
///
/// Only the owning worker mutates this state; publishing an adjustment
/// is one relaxed store into its own `NeedTask` signal.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ThresholdController {
    base: u32,
    cur: u32,
    quiet: u32,
}

impl ThresholdController {
    /// A controller resting at the static threshold `base`.
    pub fn new(base: u32) -> ThresholdController {
        ThresholdController {
            base,
            cur: base,
            quiet: 0,
        }
    }

    /// Lower bound, `max(1, base/2)`.
    pub fn lo(&self) -> u32 {
        (self.base / 2).max(1)
    }

    /// Upper bound, `base × 8`.
    pub fn hi(&self) -> u32 {
        self.base.saturating_mul(THRESHOLD_MAX_FACTOR)
    }

    /// The current threshold.
    pub fn current(&self) -> u32 {
        self.cur
    }

    /// The owner acknowledged a `need_task` (special transition): back
    /// off so the burst in flight does not re-trigger immediately.
    /// Returns the new threshold if the adjustment moved it.
    pub fn on_ack(&mut self) -> Option<u32> {
        self.quiet = 0;
        let next = (self.cur + self.base.max(1)).min(self.hi());
        if next != self.cur {
            self.cur = next;
            Some(self.cur)
        } else {
            None
        }
    }

    /// A poll observed no pressure. Returns the new threshold if a decay
    /// step fired.
    pub fn on_quiet_poll(&mut self) -> Option<u32> {
        if self.cur <= self.lo() {
            return None;
        }
        self.quiet += 1;
        if self.quiet >= THRESHOLD_QUIET_PERIOD {
            self.quiet = 0;
            self.cur -= 1;
            Some(self.cur)
        } else {
            None
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cutoff_rises_one_step_per_pressure_up_to_the_bound() {
        let mut c = CutoffController::new(4);
        assert_eq!(c.effective(), 4);
        for i in 1..=MAX_BOOST {
            assert_eq!(c.on_pressure(), Some(4 + i));
        }
        assert_eq!(c.on_pressure(), None, "bounded at base + MAX_BOOST");
        assert_eq!(c.effective(), 4 + MAX_BOOST);
    }

    #[test]
    fn cutoff_decays_only_after_a_full_comfortable_period() {
        let mut c = CutoffController::new(4);
        c.on_pressure();
        c.on_pressure();
        for _ in 0..DECAY_PERIOD - 1 {
            assert_eq!(c.on_calm_poll(COMFORT_OCCUPANCY), None);
        }
        assert_eq!(c.on_calm_poll(COMFORT_OCCUPANCY), Some(5));
        assert_eq!(c.effective(), 5);
    }

    #[test]
    fn low_occupancy_resets_the_calm_streak() {
        let mut c = CutoffController::new(4);
        c.on_pressure();
        for _ in 0..DECAY_PERIOD - 1 {
            c.on_calm_poll(COMFORT_OCCUPANCY);
        }
        // An uncomfortable poll wipes the streak: decay starts over.
        assert_eq!(c.on_calm_poll(0), None);
        assert_eq!(c.on_calm_poll(COMFORT_OCCUPANCY), None);
        assert_eq!(c.effective(), 5);
    }

    #[test]
    fn pressure_resets_the_calm_streak() {
        let mut c = CutoffController::new(4);
        c.on_pressure();
        for _ in 0..DECAY_PERIOD - 1 {
            c.on_calm_poll(COMFORT_OCCUPANCY);
        }
        c.on_pressure();
        assert_eq!(c.on_calm_poll(COMFORT_OCCUPANCY), None);
    }

    #[test]
    fn cutoff_never_decays_below_base() {
        let mut c = CutoffController::new(4);
        for _ in 0..10 * DECAY_PERIOD {
            assert_eq!(c.on_calm_poll(usize::MAX), None);
        }
        assert_eq!(c.effective(), 4);
    }

    #[test]
    fn no_pressure_means_exactly_the_static_cutoff() {
        // The 1-thread guarantee: with no thief to raise need_task or
        // fail steals, the effective cutoff is the base, always.
        let mut c = CutoffController::new(7);
        for occ in 0..1000 {
            c.on_calm_poll(occ % 5);
            assert_eq!(c.effective(), 7);
        }
    }

    #[test]
    fn threshold_backs_off_on_ack_and_is_bounded() {
        let mut t = ThresholdController::new(4);
        assert_eq!(t.current(), 4);
        assert_eq!(t.on_ack(), Some(8));
        assert_eq!(t.on_ack(), Some(12));
        for _ in 0..20 {
            t.on_ack();
        }
        assert_eq!(t.current(), t.hi());
        assert_eq!(t.on_ack(), None);
    }

    #[test]
    fn threshold_decays_one_step_per_quiet_period_down_to_lo() {
        let mut t = ThresholdController::new(4);
        t.on_ack(); // 8
        for _ in 0..THRESHOLD_QUIET_PERIOD - 1 {
            assert_eq!(t.on_quiet_poll(), None);
        }
        assert_eq!(t.on_quiet_poll(), Some(7));
        // Sustained calm walks it past base down to lo = 2 and stops.
        for _ in 0..20 * THRESHOLD_QUIET_PERIOD {
            t.on_quiet_poll();
        }
        assert_eq!(t.current(), t.lo());
        assert_eq!(t.current(), 2);
        assert_eq!(t.on_quiet_poll(), None);
    }

    #[test]
    fn threshold_lo_never_reaches_zero() {
        let t = ThresholdController::new(1);
        assert_eq!(t.lo(), 1);
        assert_eq!(t.hi(), 8);
    }
}
