//! Pluggable scheduling strategies for the AdaptiveTC engine.
//!
//! The paper hard-wires one strategy: create tasks down to the static
//! `⌈log₂N⌉` cutoff, steal one entry per probe, and trigger the
//! `need_task` back-pressure at a fixed `max_stolen_num`. This crate
//! factors each of those decisions into a policy the engine, the job
//! server and the simulator all consume from the same `Config` axes
//! ([`CreationPolicy`], [`ExtractionPolicy`], [`ThresholdPolicy`] in
//! `adaptivetc-core`):
//!
//! * **Creation** — when a spawn becomes a real task (frame + workspace
//!   copy) rather than an inlined fake task: [`StaticCreation`] (the
//!   fixed cutoff alone, no back-pressure response — Figure 9's
//!   cutoff-only arm), [`HybridCreation`] (the fixed cutoff plus a
//!   depth window that re-opens while the own deque runs dry), and
//!   [`AdaptiveCreation`] (the paper's FSM driven by the online
//!   [`CutoffController`]).
//! * **Extraction** — how much a successful probe takes: [`StealOne`]
//!   (the paper's unit steal) or [`StealHalf`] (loot up to half the
//!   victim's published occupancy, bounded by [`MAX_LOOT`]).
//! * **Threshold** — how the `need_task` trigger is tuned:
//!   [`FixedThreshold`] or [`AdaptiveThreshold`] (the
//!   [`ThresholdController`] feedback loop).
//!
//! Each policy axis is a trait ([`CreationStrategy`],
//! [`ExtractionStrategy`], [`ThresholdStrategy`]) with the concrete
//! implementations above, and a closed enum per axis ([`Creation`],
//! [`Extraction`], [`Threshold`]) that the engine's hot path matches on
//! — static dispatch, no vtables. [`WorkerStrategy::from_config`]
//! builds one per-worker bundle from a `Config`; all controller state
//! is worker-private (see [`controller`]).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod controller;

pub use controller::{
    CutoffController, ThresholdController, COMFORT_OCCUPANCY, DECAY_PERIOD, HARD_STEAL_STREAK,
    MAX_BOOST, THRESHOLD_MAX_FACTOR, THRESHOLD_QUIET_PERIOD,
};

use adaptivetc_core::{Config, CreationPolicy, ExtractionPolicy, ThresholdPolicy};

/// Most entries one probe may loot under [`StealHalf`], whatever the
/// victim's occupancy: bounds the time claimed-but-unstarted frames sit
/// invisible in the thief's hand.
pub const MAX_LOOT: usize = 8;

// ---------------------------------------------------------------------------
// Creation
// ---------------------------------------------------------------------------

/// When does a spawn become a real task (frame + workspace copy)?
///
/// `fast2` marks the paper's fast_2 regime (cutoff doubled, depth
/// reset); policies that never respond to `need_task` never enter it
/// but must still answer for stolen frames resumed by a thief.
pub trait CreationStrategy {
    /// Does a child at task depth `depth` run as a real task?
    fn real_task(&self, depth: u32, fast2: bool, occupancy: usize) -> bool;

    /// Does this policy divert a raised `need_task` poll into the
    /// special-task transition (the paper's adaptive response)?
    fn responds_to_need_task(&self) -> bool;
}

/// The fixed cutoff alone: `depth < cutoff`, no back-pressure response,
/// no fast_2 doubling — the static arm of the Figure 9 sweep.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StaticCreation {
    /// The fixed cutoff depth.
    pub cutoff: u32,
}

impl CreationStrategy for StaticCreation {
    #[inline]
    fn real_task(&self, depth: u32, _fast2: bool, _occupancy: usize) -> bool {
        depth < self.cutoff
    }

    fn responds_to_need_task(&self) -> bool {
        false
    }
}

/// Depth + occupancy hybrid: the fixed cutoff, plus a second depth
/// window up to `2 × cutoff` that opens whenever the worker's own deque
/// has run dry (occupancy below [`COMFORT_OCCUPANCY`]). Replenishes the
/// stealable frontier without the special-task machinery.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HybridCreation {
    /// The base cutoff depth.
    pub cutoff: u32,
}

impl CreationStrategy for HybridCreation {
    #[inline]
    fn real_task(&self, depth: u32, _fast2: bool, occupancy: usize) -> bool {
        depth < self.cutoff || (occupancy < COMFORT_OCCUPANCY && depth < 2 * self.cutoff)
    }

    fn responds_to_need_task(&self) -> bool {
        false
    }
}

/// The paper-faithful adaptive policy: the five-version FSM (cutoff
/// doubled and depth reset in fast_2) with the base cutoff retuned
/// online by the [`CutoffController`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveCreation {
    /// The online cutoff state (worker-private).
    pub ctl: CutoffController,
}

impl CreationStrategy for AdaptiveCreation {
    #[inline]
    fn real_task(&self, depth: u32, fast2: bool, _occupancy: usize) -> bool {
        let eff = self.ctl.effective();
        depth < if fast2 { eff * 2 } else { eff }
    }

    fn responds_to_need_task(&self) -> bool {
        true
    }
}

/// Closed creation-policy sum the engine matches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Creation {
    /// [`StaticCreation`].
    Static(StaticCreation),
    /// [`HybridCreation`].
    Hybrid(HybridCreation),
    /// [`AdaptiveCreation`].
    Adaptive(AdaptiveCreation),
}

impl Creation {
    /// Instantiate from the config axis with the run's base cutoff.
    pub fn from_policy(policy: CreationPolicy, cutoff: u32) -> Creation {
        match policy {
            CreationPolicy::Static => Creation::Static(StaticCreation { cutoff }),
            CreationPolicy::Hybrid => Creation::Hybrid(HybridCreation { cutoff }),
            CreationPolicy::Adaptive => Creation::Adaptive(AdaptiveCreation {
                ctl: CutoffController::new(cutoff),
            }),
        }
    }

    /// Does a child at task depth `depth` run as a real task?
    /// `occupancy` is consulted lazily — only the hybrid policy reads
    /// it, so static and adaptive decisions stay free of deque loads.
    #[inline]
    pub fn real_task(&self, depth: u32, fast2: bool, occupancy: impl FnOnce() -> usize) -> bool {
        match self {
            Creation::Static(p) => p.real_task(depth, fast2, 0),
            Creation::Hybrid(p) => p.real_task(depth, fast2, occupancy()),
            Creation::Adaptive(p) => p.real_task(depth, fast2, 0),
        }
    }

    /// See [`CreationStrategy::responds_to_need_task`].
    #[inline]
    pub fn responds_to_need_task(&self) -> bool {
        match self {
            Creation::Static(p) => p.responds_to_need_task(),
            Creation::Hybrid(p) => p.responds_to_need_task(),
            Creation::Adaptive(p) => p.responds_to_need_task(),
        }
    }

    /// Controller feedback: a poll observed `need_task` pressure.
    /// Returns the new effective cutoff if the policy adapted.
    #[inline]
    pub fn on_pressure(&mut self) -> Option<u32> {
        match self {
            Creation::Adaptive(p) => p.ctl.on_pressure(),
            _ => None,
        }
    }

    /// Controller feedback: a calm poll. `occupancy` (the worker's own
    /// deque length) is gathered lazily — only an adaptive policy whose
    /// cutoff is currently boosted reads it, so a resting controller
    /// adds nothing to the poll.
    #[inline]
    pub fn on_calm_poll(&mut self, occupancy: impl FnOnce() -> usize) -> Option<u32> {
        match self {
            Creation::Adaptive(p) if p.ctl.boosted() => p.ctl.on_calm_poll(occupancy()),
            _ => None,
        }
    }

    /// Controller feedback: this worker's steal succeeded only after at
    /// least [`HARD_STEAL_STREAK`] failed probes.
    #[inline]
    pub fn on_hard_steal(&mut self) -> Option<u32> {
        match self {
            Creation::Adaptive(p) => p.ctl.on_hard_steal(),
            _ => None,
        }
    }
}

// ---------------------------------------------------------------------------
// Extraction
// ---------------------------------------------------------------------------

/// How many entries one successful probe takes.
pub trait ExtractionStrategy {
    /// Batch size for a probe against a victim whose published
    /// occupancy is `victim_occupancy` (≥ 1; 1 = the paper's unit
    /// steal).
    fn batch(&self, victim_occupancy: usize) -> usize;
}

/// The paper's unit steal: one entry per probe.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealOne;

impl ExtractionStrategy for StealOne {
    #[inline]
    fn batch(&self, _victim_occupancy: usize) -> usize {
        1
    }
}

/// Steal-half: loot up to half the victim's published occupancy,
/// bounded by [`MAX_LOOT`]. The classic amortisation — one probe's
/// synchronization buys several tasks — at the cost of work sitting in
/// the thief's hand.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StealHalf;

impl ExtractionStrategy for StealHalf {
    #[inline]
    fn batch(&self, victim_occupancy: usize) -> usize {
        (victim_occupancy / 2).clamp(1, MAX_LOOT)
    }
}

/// Closed extraction-policy sum the engine matches on.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Extraction {
    /// [`StealOne`].
    One(StealOne),
    /// [`StealHalf`].
    Half(StealHalf),
}

impl Extraction {
    /// Instantiate from the config axis.
    pub fn from_policy(policy: ExtractionPolicy) -> Extraction {
        match policy {
            ExtractionPolicy::StealOne => Extraction::One(StealOne),
            ExtractionPolicy::StealHalf => Extraction::Half(StealHalf),
        }
    }

    /// See [`ExtractionStrategy::batch`].
    #[inline]
    pub fn batch(&self, victim_occupancy: usize) -> usize {
        match self {
            Extraction::One(p) => p.batch(victim_occupancy),
            Extraction::Half(p) => p.batch(victim_occupancy),
        }
    }

    /// Is this the paper's unit steal? Lets the engine skip reading the
    /// victim's occupancy hint entirely when the batch is always 1.
    #[inline]
    pub fn is_unit(&self) -> bool {
        matches!(self, Extraction::One(_))
    }
}

// ---------------------------------------------------------------------------
// Threshold
// ---------------------------------------------------------------------------

/// How the `need_task` trigger threshold (`max_stolen_num`) is tuned.
pub trait ThresholdStrategy {
    /// The threshold the worker's signal starts at.
    fn initial(&self) -> u32;

    /// The owner acknowledged a `need_task`; returns a new threshold to
    /// publish, if the policy adapts.
    fn retune_on_ack(&mut self) -> Option<u32>;

    /// A poll observed no pressure; returns a new threshold to publish,
    /// if a decay step fired.
    fn retune_on_quiet(&mut self) -> Option<u32>;
}

/// The paper's fixed threshold.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FixedThreshold(
    /// The static `max_stolen_num`.
    pub u32,
);

impl ThresholdStrategy for FixedThreshold {
    fn initial(&self) -> u32 {
        self.0
    }

    fn retune_on_ack(&mut self) -> Option<u32> {
        None
    }

    fn retune_on_quiet(&mut self) -> Option<u32> {
        None
    }
}

/// The adaptive threshold driven by the [`ThresholdController`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AdaptiveThreshold(
    /// The online threshold state (worker-private).
    pub ThresholdController,
);

impl ThresholdStrategy for AdaptiveThreshold {
    fn initial(&self) -> u32 {
        self.0.current()
    }

    fn retune_on_ack(&mut self) -> Option<u32> {
        self.0.on_ack()
    }

    fn retune_on_quiet(&mut self) -> Option<u32> {
        self.0.on_quiet_poll()
    }
}

/// Closed threshold-policy sum the engine matches on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Threshold {
    /// [`FixedThreshold`].
    Fixed(FixedThreshold),
    /// [`AdaptiveThreshold`].
    Adaptive(AdaptiveThreshold),
}

impl Threshold {
    /// Instantiate from the config axis with the run's base threshold.
    pub fn from_policy(policy: ThresholdPolicy, max_stolen_num: u32) -> Threshold {
        match policy {
            ThresholdPolicy::Fixed => Threshold::Fixed(FixedThreshold(max_stolen_num)),
            ThresholdPolicy::Adaptive => {
                Threshold::Adaptive(AdaptiveThreshold(ThresholdController::new(max_stolen_num)))
            }
        }
    }

    /// See [`ThresholdStrategy::retune_on_ack`].
    #[inline]
    pub fn retune_on_ack(&mut self) -> Option<u32> {
        match self {
            Threshold::Fixed(p) => p.retune_on_ack(),
            Threshold::Adaptive(p) => p.retune_on_ack(),
        }
    }

    /// See [`ThresholdStrategy::retune_on_quiet`].
    #[inline]
    pub fn retune_on_quiet(&mut self) -> Option<u32> {
        match self {
            Threshold::Fixed(p) => p.retune_on_quiet(),
            Threshold::Adaptive(p) => p.retune_on_quiet(),
        }
    }
}

// ---------------------------------------------------------------------------
// The per-worker bundle
// ---------------------------------------------------------------------------

/// One worker's strategy state: the three policy axes, instantiated
/// from a `Config`. Entirely worker-private — cloning the bundle per
/// worker is what keeps every controller fence-free.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WorkerStrategy {
    /// The creation policy (and its cutoff controller when adaptive).
    pub creation: Creation,
    /// The extraction policy.
    pub extraction: Extraction,
    /// The threshold policy (and its controller when adaptive).
    pub threshold: Threshold,
}

impl WorkerStrategy {
    /// Build a worker's bundle from the run configuration and its
    /// resolved base cutoff (`Config::cutoff_depth`, already clamped).
    pub fn from_config(cfg: &Config, cutoff: u32) -> WorkerStrategy {
        WorkerStrategy {
            creation: Creation::from_policy(cfg.creation, cutoff),
            extraction: Extraction::from_policy(cfg.extraction),
            threshold: Threshold::from_policy(cfg.threshold, cfg.max_stolen_num),
        }
    }

    /// The paper-default bundle: adaptive FSM creation at the base
    /// cutoff (boost never moves without pressure), unit steal, fixed
    /// threshold. Every non-adaptive engine mode runs this regardless of
    /// the config's strategy axes — the policy knobs parameterise the
    /// AdaptiveTC scheduler, not the Cilk/cutoff baselines it is
    /// measured against.
    pub fn baseline(cutoff: u32, max_stolen_num: u32) -> WorkerStrategy {
        WorkerStrategy {
            creation: Creation::from_policy(CreationPolicy::Adaptive, cutoff),
            extraction: Extraction::One(StealOne),
            threshold: Threshold::Fixed(FixedThreshold(max_stolen_num)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn static_is_the_cutoff_alone() {
        let p = StaticCreation { cutoff: 3 };
        assert!(p.real_task(2, false, 0));
        assert!(!p.real_task(3, false, 0));
        // No fast_2 doubling, no need_task response.
        assert!(!p.real_task(3, true, 0));
        assert!(!p.responds_to_need_task());
    }

    #[test]
    fn hybrid_opens_a_window_when_the_deque_runs_dry() {
        let p = HybridCreation { cutoff: 3 };
        assert!(p.real_task(2, false, 100));
        assert!(!p.real_task(3, false, COMFORT_OCCUPANCY));
        assert!(p.real_task(3, false, 0), "dry deque re-opens creation");
        assert!(p.real_task(5, false, 0));
        assert!(!p.real_task(6, false, 0), "window closes at 2 × cutoff");
        assert!(!p.responds_to_need_task());
    }

    #[test]
    fn adaptive_matches_the_paper_fsm_at_rest() {
        let p = AdaptiveCreation {
            ctl: CutoffController::new(3),
        };
        assert!(p.responds_to_need_task());
        for depth in 0..10 {
            assert_eq!(p.real_task(depth, false, 0), depth < 3);
            assert_eq!(p.real_task(depth, true, 0), depth < 6);
        }
    }

    #[test]
    fn adaptive_tracks_its_controller() {
        let mut c = Creation::from_policy(CreationPolicy::Adaptive, 3);
        assert!(!c.real_task(3, false, || unreachable!("not hybrid")));
        assert_eq!(c.on_pressure(), Some(4));
        assert!(c.real_task(3, false, || unreachable!("not hybrid")));
    }

    #[test]
    fn non_adaptive_creation_ignores_feedback() {
        for policy in [CreationPolicy::Static, CreationPolicy::Hybrid] {
            let mut c = Creation::from_policy(policy, 3);
            assert_eq!(c.on_pressure(), None);
            assert_eq!(c.on_calm_poll(|| 0), None);
            assert_eq!(c.on_hard_steal(), None);
        }
    }

    #[test]
    fn steal_half_batches_are_bounded() {
        let h = StealHalf;
        assert_eq!(h.batch(0), 1);
        assert_eq!(h.batch(1), 1);
        assert_eq!(h.batch(2), 1);
        assert_eq!(h.batch(6), 3);
        assert_eq!(h.batch(1000), MAX_LOOT);
        assert_eq!(StealOne.batch(1000), 1);
    }

    #[test]
    fn fixed_threshold_never_retunes() {
        let mut t = Threshold::from_policy(ThresholdPolicy::Fixed, 20);
        assert_eq!(t.retune_on_ack(), None);
        for _ in 0..10 * THRESHOLD_QUIET_PERIOD {
            assert_eq!(t.retune_on_quiet(), None);
        }
    }

    #[test]
    fn bundle_mirrors_the_config_axes() {
        let cfg = Config::new(4)
            .creation(CreationPolicy::Hybrid)
            .extraction(ExtractionPolicy::StealHalf)
            .threshold(ThresholdPolicy::Adaptive);
        let s = WorkerStrategy::from_config(&cfg, 5);
        assert!(matches!(s.creation, Creation::Hybrid(_)));
        assert!(matches!(s.extraction, Extraction::Half(_)));
        assert!(matches!(s.threshold, Threshold::Adaptive(_)));
        let d = WorkerStrategy::from_config(&Config::new(4), 5);
        assert!(matches!(d.creation, Creation::Adaptive(_)));
        assert!(matches!(d.extraction, Extraction::One(_)));
        assert!(matches!(d.threshold, Threshold::Fixed(_)));
    }
}
